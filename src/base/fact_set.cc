#include "base/fact_set.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>

#include "base/check.h"
#include "base/failpoint.h"
#include "base/obs_hooks.h"
#include "base/worker_pool.h"

namespace frontiers {

namespace {
const std::vector<uint32_t>& EmptyIndex() {
  static const std::vector<uint32_t>* empty = new std::vector<uint32_t>();
  return *empty;
}

uint32_t RoundUpPow2Clamped(uint32_t n) {
  if (n < 1) n = 1;
  if (n > 256) n = 256;
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}
}  // namespace

void FactSet::InitShards(uint32_t shard_count) {
  shard_count = RoundUpPow2Clamped(shard_count);
  shard_mask_ = shard_count - 1;
  shards_.resize(shard_count);
  shard_mutexes_.clear();
  shard_mutexes_.reserve(shard_count);
  for (uint32_t i = 0; i < shard_count; ++i) {
    shard_mutexes_.push_back(std::make_unique<std::mutex>());
  }
}

FactSet::FactSet(uint32_t shard_count) { InitShards(shard_count); }

FactSet::FactSet(const FactSet& other)
    : atoms_(other.atoms_),
      local_row_(other.local_row_),
      predicates_(other.predicates_),
      shards_(other.shards_),
      shard_mask_(other.shard_mask_),
      domain_(other.domain_),
      atom_degree_(other.atom_degree_) {
  // Copies share no synchronization state: fresh, unlocked mutexes.
  InitShards(shard_count());
}

FactSet& FactSet::operator=(const FactSet& other) {
  if (this != &other) {
    FactSet tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

std::optional<uint32_t> FactSet::FindRow(PredicateId predicate,
                                         const TermId* terms,
                                         uint32_t arity) const {
  auto it = predicates_.find(predicate);
  if (it == predicates_.end()) return std::nullopt;
  const ColumnarSegment& seg = it->second.segment;
  if (seg.arity() != arity) return std::nullopt;
  uint64_t hash = HashRow(predicate, terms, arity);
  const RowIdSet& dedup = shards_[DedupShardOf(predicate, terms, arity)].dedup;
  uint32_t id = dedup.Find(hash, [&](uint32_t candidate) {
    return RowMatches(candidate, predicate, terms, seg);
  });
  if (id == RowIdSet::kNotFound) return std::nullopt;
  return id;
}

std::optional<uint32_t> FactSet::IndexOf(const Atom& atom) const {
  return FindRow(atom.predicate, atom.args.data(),
                 static_cast<uint32_t>(atom.args.size()));
}

void FactSet::CountTermOccurrence(const TermId* args, uint32_t pos) {
  // Count each atom once per distinct term it mentions; first occurrence
  // of a term overall also defines its active-domain position.
  TermId t = args[pos];
  for (uint32_t j = 0; j < pos; ++j) {
    if (args[j] == t) return;  // counted at its first position in this atom
  }
  if (t >= atom_degree_.size()) {
    size_t grown = atom_degree_.empty() ? 64 : atom_degree_.size() * 2;
    while (grown <= t) grown *= 2;
    atom_degree_.resize(grown, 0);
  }
  if (++atom_degree_[t] == 1) domain_.push_back(t);
}

void FactSet::IndexNewAtom(uint32_t index, PredicateIndex& pidx) {
  const Atom& atom = atoms_[index];
  pidx.atom_ids.push_back(index);
  const uint32_t arity = static_cast<uint32_t>(atom.args.size());
  for (uint32_t pos = 0; pos < arity; ++pos) {
    PositionIndex& pi = pidx.by_position[pos];
    pi.map.Append(atom.args[pos], index, pi.pool);
    CountTermOccurrence(atom.args.data(), pos);
  }
}

FactSet::InsertOutcome FactSet::InsertRow(PredicateId predicate,
                                          const TermId* terms,
                                          uint32_t arity) {
  auto [pred_it, fresh_predicate] =
      predicates_.try_emplace(predicate, PredicateIndex(arity));
  PredicateIndex& pidx = pred_it->second;
  ColumnarSegment& seg = pidx.segment;
  FRONTIERS_CHECK(seg.arity() == arity,
                  "FactSet: predicate used at two different arities");
  uint64_t hash = HashRow(predicate, terms, arity);
  Shard& shard = shards_[DedupShardOf(predicate, terms, arity)];
  if (!fresh_predicate) {
    uint32_t id = shard.dedup.Find(hash, [&](uint32_t candidate) {
      return RowMatches(candidate, predicate, terms, seg);
    });
    if (id != RowIdSet::kNotFound) return {id, false};
  }
  uint32_t index = static_cast<uint32_t>(atoms_.size());
  atoms_.push_back(Atom{predicate, std::vector<TermId>(terms, terms + arity)});
  local_row_.push_back(static_cast<uint32_t>(seg.rows()));
  seg.AppendRow(terms);
  shard.dedup.FindOrInsert(hash, index, [](uint32_t) { return false; });
  IndexNewAtom(index, pidx);
  return {index, true};
}

bool FactSet::Insert(const Atom& atom) {
  return InsertRow(atom.predicate, atom.args.data(),
                   static_cast<uint32_t>(atom.args.size()))
      .inserted;
}

size_t FactSet::InsertBatch(const RowBlock& block,
                            std::vector<InsertOutcome>* outcomes,
                            size_t max_size) {
  // Torture harness: a fired failpoint simulates allocation exhaustion at
  // batch admission.  The store is left untouched and no outcomes are
  // appended, so the caller can abandon the operation cleanly (the chase
  // distinguishes this from a real truncation via the fired count).
  if (FRONTIERS_FAILPOINT("fact_set.insert_batch")) return 0;
  // Pre-size once for the whole batch: each dedup shard to its worst-case
  // final cardinality, and each touched segment by its row count.
  {
    std::vector<size_t> rows_per_shard(shard_count(), 0);
    for (size_t row = 0; row < block.rows(); ++row) {
      ++rows_per_shard[DedupShardOf(block.predicates[row], block.Terms(row),
                                    block.Arity(row))];
    }
    for (uint32_t s = 0; s < shard_count(); ++s) {
      if (rows_per_shard[s] > 0) {
        shards_[s].dedup.Reserve(shards_[s].dedup.size() + rows_per_shard[s]);
      }
    }
  }
  atoms_.reserve(atoms_.size() + block.rows());
  local_row_.reserve(local_row_.size() + block.rows());
  if (outcomes != nullptr) outcomes->reserve(outcomes->size() + block.rows());
  std::unordered_map<PredicateId, size_t> per_predicate;
  for (PredicateId p : block.predicates) ++per_predicate[p];
  for (const auto& [predicate, count] : per_predicate) {
    auto it = predicates_.find(predicate);
    if (it == predicates_.end()) continue;
    ColumnarSegment& seg = it->second.segment;
    seg.Reserve(seg.rows() + count);
    it->second.atom_ids.reserve(it->second.atom_ids.size() + count);
  }
  size_t added = 0;
  for (size_t row = 0; row < block.rows(); ++row) {
    if (atoms_.size() >= max_size) {
      // At the cap only duplicates pass; the first new row truncates the
      // batch without being consumed.
      std::optional<uint32_t> existing =
          FindRow(block.predicates[row], block.Terms(row), block.Arity(row));
      if (!existing.has_value()) break;
      if (outcomes != nullptr) outcomes->push_back({*existing, false});
      continue;
    }
    InsertOutcome outcome =
        InsertRow(block.predicates[row], block.Terms(row), block.Arity(row));
    if (outcome.inserted) ++added;
    if (outcomes != nullptr) outcomes->push_back(outcome);
  }
  return added;
}

size_t FactSet::InsertBatchParallel(const RowBlock& block,
                                    std::vector<InsertOutcome>* outcomes,
                                    WorkerPool* pool, size_t max_size,
                                    BatchTimings* timings, BatchStats* stats) {
  using Clock = std::chrono::steady_clock;
  const size_t rows = block.rows();
  // A batch that could truncate against the cap takes the serial path: cap
  // semantics are insert-by-insert stateful (only duplicates pass once the
  // cap is hit), and hitting the cap is terminal for the caller anyway.
  if (atoms_.size() + rows > max_size) {
    const Clock::time_point start = Clock::now();
    size_t added = InsertBatch(block, outcomes, max_size);
    if (timings != nullptr) timings->dedup_seconds += SecondsSince(start);
    if (stats != nullptr) {
      stats->new_atoms = added;
      stats->rows = rows;
    }
    return added;
  }
  // Same admission failpoint as the serial path (the serial fallback above
  // runs its own copy of this check, so it fires exactly once either way).
  if (FRONTIERS_FAILPOINT("fact_set.insert_batch")) return 0;
  if (rows == 0) return 0;
  FRONTIERS_CHECK(atoms_.size() + rows < kBatchRowBit,
                  "FactSet: batch would overflow the provisional id space");

  const Clock::time_point dedup_start = Clock::now();
  const uint32_t num_shards = shard_count();
  const size_t num_threads =
      pool != nullptr ? std::max<size_t>(1, pool->threads()) : 1;
  // Contention/critical-path timing: needed whenever the caller wants
  // BatchStats (the chase always does) or a task-stream session is live.
  // Cost is a handful of clock reads per *task* (tasks are shard- or
  // column-sized, never row-sized), all landing in disjoint scratch slots.
  const bool timed = stats != nullptr || obs::taskhooks::TasksEnabled();
  const uint64_t batch_id =
      obs::taskhooks::TasksEnabled() ? obs::taskhooks::NextBatchId() : 0;
  const auto region_stats = [](const std::vector<uint64_t>& busy_ns,
                               double wall_seconds,
                               BatchStats::ParallelRegion* region) {
    uint64_t total = 0, longest = 0;
    for (uint64_t ns : busy_ns) {
      total += ns;
      longest = std::max(longest, ns);
    }
    region->wall_seconds += wall_seconds;
    region->work_seconds += static_cast<double>(total) * 1e-9;
    region->longest_seconds += static_cast<double>(longest) * 1e-9;
  };
  // Generic over the task body: the inline (single-thread) branch calls it
  // directly, so only the pool branch pays a std::function conversion.
  const auto run = [&](size_t count, const auto& fn) {
    if (pool != nullptr && pool->threads() > 1) {
      pool->Run(count, fn);
    } else {
      for (size_t i = 0; i < count; ++i) fn(i);
    }
  };

  // All per-batch working arrays live in scratch_ and keep their capacity
  // across batches; reset what the early loops don't fully overwrite.
  BatchScratch& s = scratch_;
  s.shard_rows.resize(num_shards);
  s.shard_new.resize(num_shards);
  for (uint32_t sh = 0; sh < num_shards; ++sh) {
    s.shard_rows[sh].clear();
    s.shard_new[sh].clear();
  }
  s.active_shards.clear();
  s.new_rows.clear();
  s.plans.clear();
  s.plan_rows.clear();
  s.plan_of.clear();
  s.tasks.clear();

  // --- Phase A0: per-row hashing + shard routing (embarrassingly parallel).
  BatchStats::ParallelRegion hash_region, dedup_region, index_region;
  std::vector<uint64_t>& hashes = s.hashes;
  std::vector<uint32_t>& shard_of = s.shard_of;
  hashes.resize(rows);
  shard_of.resize(rows);
  {
    const size_t chunk = (rows + num_threads - 1) / num_threads;
    const size_t chunks = (rows + chunk - 1) / chunk;
    if (timed) s.task_busy_ns.assign(chunks, 0);
    const Clock::time_point region_start = Clock::now();
    run(chunks, [&](size_t c) {
      const uint64_t task_start =
          timed ? obs::internal::NowNanos() : 0;
      const size_t begin = c * chunk;
      const size_t end = std::min(rows, begin + chunk);
      for (size_t row = begin; row < end; ++row) {
        const PredicateId p = block.predicates[row];
        const TermId* terms = block.Terms(row);
        const uint32_t arity = block.Arity(row);
        hashes[row] = HashRow(p, terms, arity);
        shard_of[row] = DedupShardOf(p, terms, arity);
      }
      if (timed) s.task_busy_ns[c] = obs::internal::NowNanos() - task_start;
    });
    if (timed) {
      region_stats(s.task_busy_ns, SecondsSince(region_start), &hash_region);
    }
  }

  // --- Serial prep: resolve predicates (the map may gain entries, which
  // must happen single-threaded and in block order), and group rows by
  // shard preserving block order within each shard.
  std::vector<PredicateIndex*>& pidx_of = s.pidx_of;
  std::vector<std::vector<uint32_t>>& shard_rows = s.shard_rows;
  pidx_of.resize(rows);
  for (size_t row = 0; row < rows; ++row) {
    const PredicateId p = block.predicates[row];
    const uint32_t arity = block.Arity(row);
    auto it = predicates_.try_emplace(p, PredicateIndex(arity)).first;
    FRONTIERS_CHECK(it->second.segment.arity() == arity,
                    "FactSet: predicate used at two different arities");
    pidx_of[row] = &it->second;
    shard_rows[shard_of[row]].push_back(static_cast<uint32_t>(row));
  }
  std::vector<uint32_t>& active_shards = s.active_shards;
  for (uint32_t sh = 0; sh < num_shards; ++sh) {
    if (!shard_rows[sh].empty()) active_shards.push_back(sh);
  }

  // --- Phase A: per-shard dedup probes.  Duplicate rows agree on
  // (predicate, first term), so every duplicate pair meets inside one
  // shard; new rows get the provisional id `kBatchRowBit | row` and are
  // promoted to their final global id by the fix-up task below.  Reads of
  // the columnar store are lock-free (nothing mutates it in this phase);
  // each shard's table is guarded by its own mutex.
  std::vector<uint32_t>& found = s.found;
  found.assign(rows, RowIdSet::kNotFound);
  std::vector<std::vector<uint32_t>>& shard_new = s.shard_new;
  if (timed) {
    s.shard_wait_ns.assign(num_shards, 0);
    s.shard_hold_ns.assign(num_shards, 0);
  }
  std::atomic<bool> faulted{false};
  const Clock::time_point dedup_region_start = Clock::now();
  run(active_shards.size(), [&](size_t task) {
    const uint32_t sh = active_shards[task];
    // Wait vs hold: the gap between requesting and acquiring the shard
    // mutex is contention; everything after acquisition is productive
    // work.  Each shard has exactly one dedup task, so slot `sh` is ours.
    const uint64_t lock_requested = timed ? obs::internal::NowNanos() : 0;
    std::lock_guard<std::mutex> lock(*shard_mutexes_[sh]);
    const uint64_t lock_acquired = timed ? obs::internal::NowNanos() : 0;
    // Torture harness: a mid-commit fault inside one shard's task.  The
    // whole batch aborts; provisional entries in *every* shard are rolled
    // back below.
    if (FRONTIERS_FAILPOINT("fact_set.shard_commit")) {
      faulted.store(true, std::memory_order_relaxed);
      return;
    }
    Shard& shard = shards_[sh];
    shard.dedup.Reserve(shard.dedup.size() + shard_rows[sh].size());
    for (uint32_t row : shard_rows[sh]) {
      const PredicateId p = block.predicates[row];
      const TermId* terms = block.Terms(row);
      const uint32_t arity = block.Arity(row);
      const ColumnarSegment& seg = pidx_of[row]->segment;
      const uint32_t marker = kBatchRowBit | row;
      const uint32_t resident = shard.dedup.FindOrInsert(
          hashes[row], marker, [&](uint32_t candidate) {
            if (candidate & kBatchRowBit) {
              const uint32_t other = candidate & ~kBatchRowBit;
              return block.predicates[other] == p &&
                     block.Arity(other) == arity &&
                     std::memcmp(block.Terms(other), terms,
                                 arity * sizeof(TermId)) == 0;
            }
            return RowMatches(candidate, p, terms, seg);
          });
      found[row] = resident;
      if (resident == marker) shard_new[sh].push_back(row);
    }
    if (timed) {
      s.shard_wait_ns[sh] = lock_acquired - lock_requested;
      s.shard_hold_ns[sh] = obs::internal::NowNanos() - lock_acquired;
    }
  });
  if (timed) {
    // The dedup region's "work" is lock-hold time (all task work runs
    // under the shard mutex); wait time is accounted separately as
    // contention.
    s.task_busy_ns.assign(num_shards, 0);
    for (uint32_t sh : active_shards) s.task_busy_ns[sh] = s.shard_hold_ns[sh];
    region_stats(s.task_busy_ns, SecondsSince(dedup_region_start),
                 &dedup_region);
  }

  if (faulted.load(std::memory_order_relaxed)) {
    // Roll every provisional entry back out (backward-shift erase), leaving
    // each shard's table byte-equivalent to its pre-batch state.  No
    // outcome is appended and no segment/index was touched yet, so the
    // caller sees a cleanly refused batch.
    run(active_shards.size(), [&](size_t task) {
      const uint32_t sh = active_shards[task];
      std::lock_guard<std::mutex> lock(*shard_mutexes_[sh]);
      for (uint32_t row : shard_new[sh]) {
        const uint32_t marker = kBatchRowBit | row;
        shards_[sh].dedup.Erase(hashes[row],
                                [&](uint32_t id) { return id == marker; });
      }
    });
    if (timings != nullptr) timings->dedup_seconds += SecondsSince(dedup_start);
    return 0;
  }

  // --- Serial id assignment: new rows keep block order, which makes the
  // store byte-identical to the serial path at any shard/thread count.
  const uint32_t base = static_cast<uint32_t>(atoms_.size());
  std::vector<uint32_t>& row_global = s.row_global;
  std::vector<uint32_t>& row_local = s.row_local;
  std::vector<uint32_t>& new_rows = s.new_rows;
  row_global.assign(rows, 0);
  row_local.assign(rows, 0);
  uint32_t next = base;
  for (size_t row = 0; row < rows; ++row) {
    if (found[row] == (kBatchRowBit | static_cast<uint32_t>(row))) {
      row_global[row] = next++;
      new_rows.push_back(static_cast<uint32_t>(row));
    }
  }
  const size_t added = next - base;
  // Per-predicate plans in CSR form (BatchScratch::PredPlan): pass one
  // counts each predicate's new rows, pass two fills `plan_rows` —
  // grouped by plan, block order within each group — and assigns each new
  // row's segment slot.
  using PredPlan = BatchScratch::PredPlan;
  std::vector<PredPlan>& plans = s.plans;
  std::vector<uint32_t>& plan_rows = s.plan_rows;
  std::vector<uint32_t>& plan_of_row = s.plan_of_row;
  plan_of_row.resize(rows);
  for (uint32_t row : new_rows) {
    auto [it, fresh] = s.plan_of.try_emplace(
        block.predicates[row], static_cast<uint32_t>(plans.size()));
    if (fresh) {
      plans.push_back({block.predicates[row], pidx_of[row],
                       static_cast<uint32_t>(pidx_of[row]->segment.rows()),
                       /*begin=*/0, /*count=*/0});
    }
    plan_of_row[row] = it->second;
    ++plans[it->second].count;
  }
  uint32_t csr_cursor = 0;
  for (PredPlan& plan : plans) {
    plan.begin = csr_cursor;
    csr_cursor += plan.count;
    plan.count = 0;  // reused as the fill cursor; restored by the fill pass
  }
  plan_rows.resize(new_rows.size());
  for (uint32_t row : new_rows) {
    PredPlan& plan = plans[plan_of_row[row]];
    row_local[row] = plan.old_rows + plan.count;
    plan_rows[plan.begin + plan.count] = row;
    ++plan.count;
  }
  if (outcomes != nullptr) {
    outcomes->reserve(outcomes->size() + rows);
    for (size_t row = 0; row < rows; ++row) {
      const uint32_t f = found[row];
      if (f & kBatchRowBit) {
        const uint32_t src = f & ~kBatchRowBit;
        outcomes->push_back({row_global[src], src == row});
      } else {
        outcomes->push_back({f, false});
      }
    }
  }
  if (timings != nullptr) timings->dedup_seconds += SecondsSince(dedup_start);

  // --- Phase B: index fill.  All growth happens here on the coordinating
  // thread; the tasks then write disjoint pre-assigned slots — per-shard
  // dedup fix-up, per-(predicate, position) column + postings, chunked atom
  // materialization, and one serial-order domain/degree task.
  const Clock::time_point index_start = Clock::now();
  atoms_.resize(base + added);
  local_row_.resize(base + added);
  for (PredPlan& plan : plans) {
    plan.pidx->segment.ResizeRows(plan.old_rows + plan.count);
    plan.pidx->atom_ids.reserve(plan.pidx->atom_ids.size() + plan.count);
    for (uint32_t k = 0; k < plan.count; ++k) {
      plan.pidx->atom_ids.push_back(row_global[plan_rows[plan.begin + k]]);
    }
  }
  // Task kinds for BatchScratch::IndexTask.  `a` is the shard (kFixup),
  // plan (kColumn), or first new-row (kAtoms); `b` is the position
  // (kColumn) or one-past-last new-row (kAtoms).
  using IndexTask = BatchScratch::IndexTask;
  enum TaskKind : uint8_t { kFixup, kColumn, kAtoms, kDomain };
  std::vector<IndexTask>& tasks = s.tasks;
  for (uint32_t sh : active_shards) {
    if (!shard_new[sh].empty()) tasks.push_back({kFixup, sh, 0});
  }
  for (size_t i = 0; i < plans.size(); ++i) {
    const uint32_t arity = plans[i].pidx->segment.arity();
    for (uint32_t pos = 0; pos < arity; ++pos) {
      tasks.push_back({kColumn, static_cast<uint32_t>(i), pos});
    }
  }
  {
    const size_t chunk =
        std::max<size_t>(1, (new_rows.size() + num_threads - 1) / num_threads);
    for (size_t begin = 0; begin < new_rows.size(); begin += chunk) {
      tasks.push_back(
          {kAtoms, static_cast<uint32_t>(begin),
           static_cast<uint32_t>(std::min(new_rows.size(), begin + chunk))});
    }
  }
  if (!new_rows.empty()) tasks.push_back({kDomain, 0, 0});
  if (timed) s.task_busy_ns.assign(tasks.size(), 0);
  const Clock::time_point index_region_start = Clock::now();
  run(tasks.size(), [&](size_t t) {
    const uint64_t task_start = timed ? obs::internal::NowNanos() : 0;
    const IndexTask& task = tasks[t];
    switch (task.kind) {
      case kFixup: {
        const uint64_t lock_requested = timed ? obs::internal::NowNanos() : 0;
        std::lock_guard<std::mutex> lock(*shard_mutexes_[task.a]);
        const uint64_t lock_acquired = timed ? obs::internal::NowNanos() : 0;
        RowIdSet& dedup = shards_[task.a].dedup;
        for (uint32_t row : shard_new[task.a]) {
          const uint32_t marker = kBatchRowBit | row;
          bool replaced = dedup.ReplaceId(
              hashes[row], [&](uint32_t id) { return id == marker; },
              row_global[row]);
          FRONTIERS_CHECK(replaced, "FactSet: provisional dedup entry lost");
        }
        if (timed) {
          // One fix-up task per shard, so slot `task.a` stays disjoint;
          // += folds it onto the dedup task's wait/hold for this shard.
          s.shard_wait_ns[task.a] += lock_acquired - lock_requested;
          s.shard_hold_ns[task.a] +=
              obs::internal::NowNanos() - lock_acquired;
        }
        break;
      }
      case kColumn: {
        PredPlan& plan = plans[task.a];
        std::vector<TermId>& col = plan.pidx->segment.MutableColumn(task.b);
        PositionIndex& pi = plan.pidx->by_position[task.b];
        for (uint32_t k = 0; k < plan.count; ++k) {
          const uint32_t row = plan_rows[plan.begin + k];
          const TermId term = block.Terms(row)[task.b];
          col[plan.old_rows + k] = term;
          pi.map.Append(term, row_global[row], pi.pool);
        }
        break;
      }
      case kAtoms: {
        for (uint32_t k = task.a; k < task.b; ++k) {
          const uint32_t row = new_rows[k];
          const uint32_t index = row_global[row];
          const TermId* terms = block.Terms(row);
          atoms_[index] = Atom{
              block.predicates[row],
              std::vector<TermId>(terms, terms + block.Arity(row))};
          local_row_[index] = row_local[row];
        }
        break;
      }
      case kDomain: {
        // Domain order is first-seen across the whole batch, so this task
        // walks every new row in block order (it reads only the block and
        // touches only the degree/domain structures — no overlap with the
        // other tasks).
        for (uint32_t row : new_rows) {
          const TermId* terms = block.Terms(row);
          const uint32_t arity = block.Arity(row);
          for (uint32_t pos = 0; pos < arity; ++pos) {
            CountTermOccurrence(terms, pos);
          }
        }
        break;
      }
    }
    if (timed) s.task_busy_ns[t] = obs::internal::NowNanos() - task_start;
  });
  if (timed) {
    region_stats(s.task_busy_ns, SecondsSince(index_region_start),
                 &index_region);
  }
  if (timings != nullptr) timings->index_seconds += SecondsSince(index_start);
  if (stats != nullptr) {
    stats->new_atoms = added;
    stats->shards_touched = static_cast<uint32_t>(active_shards.size());
    stats->rows = rows;
    uint64_t max_rows = 0;
    for (uint32_t sh : active_shards) {
      max_rows = std::max<uint64_t>(max_rows, shard_rows[sh].size());
    }
    stats->max_shard_rows = max_rows;
    for (uint32_t sh : active_shards) {
      stats->shard_wait_ns += s.shard_wait_ns[sh];
      stats->shard_hold_ns += s.shard_hold_ns[sh];
      stats->max_shard_wait_ns =
          std::max(stats->max_shard_wait_ns, s.shard_wait_ns[sh]);
    }
    stats->hash = hash_region;
    stats->dedup = dedup_region;
    stats->index = index_region;
  }
  if (timed && obs::taskhooks::TasksEnabled()) {
    for (uint32_t sh : active_shards) {
      obs::taskhooks::EmitShard({batch_id, sh, shard_rows[sh].size(),
                                 s.shard_wait_ns[sh], s.shard_hold_ns[sh]});
    }
  }
  return added;
}

size_t FactSet::InsertAll(const FactSet& other) {
  size_t added = 0;
  for (const Atom& atom : other.atoms_) {
    if (Insert(atom)) ++added;
  }
  return added;
}

const std::vector<uint32_t>& FactSet::ByPredicate(PredicateId p) const {
  auto it = predicates_.find(p);
  if (it == predicates_.end()) return EmptyIndex();
  return it->second.atom_ids;
}

PostingList FactSet::ByPredicatePositionTerm(PredicateId p, uint32_t position,
                                             TermId t) const {
  auto it = predicates_.find(p);
  if (it == predicates_.end() || position >= it->second.by_position.size()) {
    return PostingList();
  }
  const PositionIndex& pi = it->second.by_position[position];
  const PostingMap::Entry* e = pi.map.Find(t);
  if (e == nullptr) return PostingList();
  return PostingList(&pi.pool, e->head, e->count);
}

bool FactSet::IsSubsetOf(const FactSet& other) const {
  for (const Atom& atom : atoms_) {
    if (!other.Contains(atom)) return false;
  }
  return true;
}

FactSet FactSet::InducedOn(const std::unordered_set<TermId>& keep) const {
  FactSet out;
  for (const Atom& atom : atoms_) {
    bool all_kept = true;
    for (TermId t : atom.args) {
      if (keep.find(t) == keep.end()) {
        all_kept = false;
        break;
      }
    }
    if (all_kept) out.Insert(atom);
  }
  return out;
}

std::vector<Atom> FactSet::Difference(const FactSet& other) const {
  std::vector<Atom> out;
  for (const Atom& atom : atoms_) {
    if (!other.Contains(atom)) out.push_back(atom);
  }
  return out;
}

uint32_t FactSet::AtomDegree(TermId t) const {
  return t < atom_degree_.size() ? atom_degree_[t] : 0;
}

uint64_t FactSet::PredColumnsBytes(const PredicateIndex& pidx,
                                   MemAccounting mode) const {
  return pidx.segment.HeapBytes(mode);
}

uint64_t FactSet::PredPostingsBytes(const PredicateIndex& pidx,
                                    MemAccounting mode) const {
  uint64_t sum = VectorHeapBytes(pidx.by_position, mode);
  for (const PositionIndex& pi : pidx.by_position) {
    sum += pi.map.HeapBytes(mode) + pi.pool.HeapBytes(mode);
  }
  return sum;
}

uint64_t FactSet::DedupHeapBytes(MemAccounting mode) const {
  // The shard skeleton (shard array, mutexes) scales with the shard count —
  // a pure performance knob that a snapshot round-trip may change — so it
  // is capacity-only.  Content mode keeps just the per-row dedup entries,
  // whose sum across shards is a function of the logical row set alone.
  uint64_t sum = 0;
  if (mode == MemAccounting::kCapacity) {
    sum += VectorHeapBytes(shards_, mode) +
           VectorHeapBytes(shard_mutexes_, mode) +
           static_cast<uint64_t>(shard_count()) * sizeof(std::mutex);
  }
  for (const Shard& shard : shards_) sum += shard.dedup.HeapBytes(mode);
  return sum;
}

uint64_t FactSet::MetaHeapBytes(MemAccounting mode) const {
  uint64_t sum = VectorHeapBytes(atoms_, mode) +
                 VectorHeapBytes(local_row_, mode) +
                 VectorHeapBytes(domain_, mode) +
                 VectorHeapBytes(atom_degree_, mode) +
                 UnorderedOverheadBytes(
                     predicates_.bucket_count(), predicates_.size(),
                     sizeof(std::pair<const PredicateId, PredicateIndex>),
                     mode);
  for (const auto& [p, pidx] : predicates_) {
    sum += VectorHeapBytes(pidx.atom_ids, mode);
    // Per-atom args vectors: every construction path copy-allocates the
    // exact arity, so capacity == size == arity in both modes and the sum
    // falls out of the segments without walking atoms_.
    const uint32_t arity = pidx.segment.arity();
    sum += static_cast<uint64_t>(pidx.segment.rows()) * arity *
           sizeof(TermId);
  }
  return sum;
}

uint64_t FactSet::ScratchHeapBytes() const {
  // Scratch is transient working state whose footprint depends on the
  // thread/shard split, so it is always reported at capacity (the bytes
  // the process actually holds) and never enters the deterministic total.
  const MemAccounting mode = MemAccounting::kCapacity;
  const BatchScratch& s = scratch_;
  uint64_t sum =
      VectorHeapBytes(s.hashes, mode) + VectorHeapBytes(s.shard_of, mode) +
      VectorHeapBytes(s.pidx_of, mode) + VectorHeapBytes(s.found, mode) +
      VectorHeapBytes(s.row_global, mode) +
      VectorHeapBytes(s.row_local, mode) +
      VectorHeapBytes(s.plan_of_row, mode) +
      VectorHeapBytes(s.shard_rows, mode) +
      VectorHeapBytes(s.shard_new, mode) +
      VectorHeapBytes(s.active_shards, mode) +
      VectorHeapBytes(s.new_rows, mode) + VectorHeapBytes(s.plans, mode) +
      VectorHeapBytes(s.plan_rows, mode) + VectorHeapBytes(s.tasks, mode) +
      VectorHeapBytes(s.task_busy_ns, mode) +
      VectorHeapBytes(s.shard_wait_ns, mode) +
      VectorHeapBytes(s.shard_hold_ns, mode) +
      UnorderedOverheadBytes(s.plan_of.bucket_count(), s.plan_of.size(),
                             sizeof(std::pair<const PredicateId, uint32_t>),
                             mode);
  for (const auto& v : s.shard_rows) sum += VectorHeapBytes(v, mode);
  for (const auto& v : s.shard_new) sum += VectorHeapBytes(v, mode);
  return sum;
}

void FactSet::AccountHeap(MemTotals& totals, MemAccounting mode) const {
  uint64_t columns = 0, postings = 0;
  for (const auto& [p, pidx] : predicates_) {
    columns += PredColumnsBytes(pidx, mode);
    postings += PredPostingsBytes(pidx, mode);
  }
  totals.Add(MemComponent::kColumns, columns);
  totals.Add(MemComponent::kPostings, postings);
  totals.Add(MemComponent::kDedup, DedupHeapBytes(mode));
  totals.Add(MemComponent::kFactMeta, MetaHeapBytes(mode));
  totals.Add(MemComponent::kScratch, ScratchHeapBytes());
}

void FactSet::AccountLedger(MemLedger& ledger, MemAccounting mode) const {
  std::vector<PredicateId> preds;
  preds.reserve(predicates_.size());
  for (const auto& [p, pidx] : predicates_) preds.push_back(p);
  std::sort(preds.begin(), preds.end());
  for (PredicateId p : preds) {
    ledger.Add(MemComponent::kColumns, p,
               PredColumnsBytes(predicates_.at(p), mode));
  }
  for (PredicateId p : preds) {
    ledger.Add(MemComponent::kPostings, p,
               PredPostingsBytes(predicates_.at(p), mode));
  }
  ledger.Add(MemComponent::kDedup, UINT32_MAX, DedupHeapBytes(mode));
  ledger.Add(MemComponent::kFactMeta, UINT32_MAX, MetaHeapBytes(mode));
}

std::string FactSet::ToString(const Vocabulary& vocab) const {
  std::string out = "{";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(vocab, atoms_[i]);
  }
  out += "}";
  return out;
}

}  // namespace frontiers
