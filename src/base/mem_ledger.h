#ifndef FRONTIERS_BASE_MEM_LEDGER_H_
#define FRONTIERS_BASE_MEM_LEDGER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace frontiers {

/// Component taxonomy of the memory ledger: every owning container in the
/// engine attributes its heap bytes to exactly one of these.  The set is
/// closed on purpose — a fixed enum keeps the always-on rollup a plain
/// array (`MemTotals`), so accounting at a round boundary allocates
/// nothing, and gives the `frontiers-mem-v1` stream a stable component
/// vocabulary that tools/mem_report can rank and diff across runs.
enum class MemComponent : uint32_t {
  kColumns = 0,    ///< ColumnarSegment term columns (per predicate).
  kPostings,       ///< PostingPool chunks + PostingMap slots (per predicate).
  kDedup,          ///< Per-shard open-addressed row dedup tables.
  kFactMeta,       ///< FactSet atom/row bookkeeping, domain, degrees.
  kVocabTerms,     ///< Vocabulary term table, names, constant/variable maps.
  kVocabSkolem,    ///< Skolem fns, hash-consing tables, blocks, rows.
  kProvenance,     ///< Derivations (first/all), birth atoms, depths.
  kFrontierMemo,   ///< Fired-application memo (restricted/semi-oblivious).
  kScratch,        ///< Transient batch/match scratch — diagnostic only:
                   ///< its size depends on the thread count, so it is
                   ///< excluded from the deterministic total (and thus
                   ///< from byte-budget decisions; see DESIGN.md §9).
  kCount,
};

inline constexpr size_t kMemComponentCount =
    static_cast<size_t>(MemComponent::kCount);

/// Stable lower-case component name used in streams and reports.
inline const char* MemComponentName(MemComponent c) {
  switch (c) {
    case MemComponent::kColumns: return "columns";
    case MemComponent::kPostings: return "postings";
    case MemComponent::kDedup: return "dedup";
    case MemComponent::kFactMeta: return "fact_meta";
    case MemComponent::kVocabTerms: return "vocab_terms";
    case MemComponent::kVocabSkolem: return "vocab_skolem";
    case MemComponent::kProvenance: return "provenance";
    case MemComponent::kFrontierMemo: return "frontier_memo";
    case MemComponent::kScratch: return "scratch";
    case MemComponent::kCount: break;
  }
  return "?";
}

/// Which bytes a self-report counts.
///
///  * `kCapacity` — what the container actually reserved (capacities,
///    slot arrays, arena chunks).  Exact and deterministic for a fixed
///    insert sequence — the chase's merge-ordered commit makes that
///    sequence thread-count-invariant — but *not* invariant across
///    different reconstruction paths: a resume that replays atoms one by
///    one grows vectors through a different capacity schedule than the
///    original bulk commits.  This is the mode behind the mem stream,
///    the `frontiers.mem.*` gauges, the peak (high-water) figure, and
///    mem_report's coverage-vs-RSS check.
///  * `kContent` — a pure function of logical state (sizes, not
///    capacities), so any two states with equal contents report equal
///    bytes regardless of how they were built.  This is the mode behind
///    `live_bytes`/`approx_bytes` and the byte budget — an interrupted
///    and resumed run must meter bytes identically to the uninterrupted
///    one — and the mode the resume-equivalence assert (E18) uses; see
///    DESIGN.md §9 for the contract.
enum class MemAccounting : uint8_t { kCapacity, kContent };

/// `std::vector` heap footprint under `mode`.
template <typename T>
inline uint64_t VectorHeapBytes(const std::vector<T>& v, MemAccounting mode) {
  const size_t n = mode == MemAccounting::kCapacity ? v.capacity() : v.size();
  return static_cast<uint64_t>(n) * sizeof(T);
}

/// `std::string` heap footprint under `mode`.  Short strings live in the
/// SSO buffer (15 bytes on libstdc++/libc++ x86-64) and own no heap; a
/// heap string owns capacity()+1 bytes (the terminator).  In content mode
/// the size stands in for the capacity so the figure is a state function.
inline uint64_t StringHeapBytes(const std::string& s, MemAccounting mode) {
  const size_t n = mode == MemAccounting::kCapacity ? s.capacity() : s.size();
  return n > 15 ? static_cast<uint64_t>(n) + 1 : 0;
}

/// Estimated heap footprint of a libstdc++ `unordered_map`/`unordered_set`
/// *skeleton*: the bucket pointer array plus per-node overhead (next
/// pointer + cached hash).  `node_payload` is `sizeof(value_type)`; key
/// heap (e.g. string characters) must be added by the caller per element.
/// In content mode the bucket array is skipped — bucket growth depends on
/// reserve/rehash history, which a reconstruction may not replay.
inline uint64_t UnorderedOverheadBytes(size_t bucket_count, size_t size,
                                       size_t node_payload,
                                       MemAccounting mode) {
  const uint64_t nodes =
      static_cast<uint64_t>(size) * (16 + static_cast<uint64_t>(node_payload));
  if (mode == MemAccounting::kContent) return nodes;
  return nodes + static_cast<uint64_t>(bucket_count) * sizeof(void*);
}

/// Always-on rollup: bytes per component, as a fixed array.  Building one
/// allocates nothing, which is what lets the chase account every round
/// boundary even with telemetry disabled (the per-predicate `MemLedger`
/// below is only populated when a mem stream is live).
struct MemTotals {
  uint64_t bytes[kMemComponentCount] = {};

  void Add(MemComponent c, uint64_t n) {
    bytes[static_cast<size_t>(c)] += n;
  }
  uint64_t Get(MemComponent c) const {
    return bytes[static_cast<size_t>(c)];
  }

  /// Deterministic total: every component except kScratch.  This is the
  /// figure `live_bytes`, budgets, and the stream's `total_bytes` use.
  uint64_t TrackedTotal() const {
    uint64_t sum = 0;
    for (size_t i = 0; i < kMemComponentCount; ++i) {
      if (i != static_cast<size_t>(MemComponent::kScratch)) sum += bytes[i];
    }
    return sum;
  }

  /// Everything, scratch included (diagnostic figure).
  uint64_t GrandTotal() const {
    uint64_t sum = 0;
    for (size_t i = 0; i < kMemComponentCount; ++i) sum += bytes[i];
    return sum;
  }

  MemTotals& operator+=(const MemTotals& o) {
    for (size_t i = 0; i < kMemComponentCount; ++i) bytes[i] += o.bytes[i];
    return *this;
  }
};

/// One (component, predicate) attribution row.  `predicate` is
/// UINT32_MAX for components not owned by a single predicate (dedup
/// shards, vocabulary, provenance, scratch).
struct MemLedgerRow {
  MemComponent component = MemComponent::kCount;
  uint32_t predicate = UINT32_MAX;
  uint64_t bytes = 0;
};

/// Per-predicate ledger, populated only when a mem stream wants rows.
/// Rows are appended in component-major, predicate-id order by the
/// accounting walks, which is the emission order the byte-identical
/// stream contract relies on.
struct MemLedger {
  std::vector<MemLedgerRow> rows;

  void Add(MemComponent c, uint32_t predicate, uint64_t bytes) {
    if (bytes == 0) return;
    rows.push_back(MemLedgerRow{c, predicate, bytes});
  }
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_MEM_LEDGER_H_
