#ifndef FRONTIERS_BASE_COLUMNAR_H_
#define FRONTIERS_BASE_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/atom.h"
#include "base/hash_table.h"

namespace frontiers {

/// Struct-of-arrays term storage for the atoms of one predicate.
///
/// Rows are appended in insertion order and never move, so a (predicate,
/// row) pair is a stable handle.  Each argument position is a contiguous
/// `TermId` column, which is the layout the semi-naive join and the bulk
/// commit path scan: one column touch per bound position instead of one
/// `Atom` (heap vector) dereference per candidate.
class ColumnarSegment {
 public:
  explicit ColumnarSegment(uint32_t arity) : arity_(arity) {
    columns_.resize(arity == 0 ? 0 : arity);
  }

  uint32_t arity() const { return arity_; }
  size_t rows() const { return rows_; }

  /// Appends one row; `terms` must have `arity()` entries.
  void AppendRow(const TermId* terms) {
    for (uint32_t pos = 0; pos < arity_; ++pos) {
      columns_[pos].push_back(terms[pos]);
    }
    ++rows_;
  }

  /// Removes the most recently appended row (used by insert-then-dedup).
  void PopRow() {
    for (uint32_t pos = 0; pos < arity_; ++pos) columns_[pos].pop_back();
    --rows_;
  }

  TermId Term(size_t row, uint32_t pos) const { return columns_[pos][row]; }

  /// The full column for `pos`; contiguous, one entry per row.
  const std::vector<TermId>& Column(uint32_t pos) const {
    return columns_[pos];
  }

  bool RowEquals(size_t row, const TermId* terms) const {
    for (uint32_t pos = 0; pos < arity_; ++pos) {
      if (columns_[pos][row] != terms[pos]) return false;
    }
    return true;
  }

  void Reserve(size_t rows) {
    for (auto& column : columns_) column.reserve(rows);
  }

  // --- Bulk-fill path (sharded parallel commit) ----------------------------
  // The pipelined batch insert pre-assigns every new row's position, grows
  // the segment once on the coordinating thread (`ResizeRows`), and then
  // fills each column from its own worker task (`MutableColumn`) — writes
  // are disjoint per (column, row), so no synchronization is needed beyond
  // the resize happening before the fill tasks start.

  /// Grows the segment to `rows` total rows (new cells value-initialized).
  /// Must not shrink.  Serial: call before any concurrent column fill.
  void ResizeRows(size_t rows) {
    for (auto& column : columns_) column.resize(rows);
    rows_ = rows;
  }

  /// Direct mutable access to one column for disjoint parallel fills after
  /// `ResizeRows`.
  std::vector<TermId>& MutableColumn(uint32_t pos) { return columns_[pos]; }

  /// Heap footprint of the column vectors (outer vector + each column).
  uint64_t HeapBytes(MemAccounting mode) const {
    uint64_t sum = VectorHeapBytes(columns_, mode);
    for (const auto& column : columns_) sum += VectorHeapBytes(column, mode);
    return sum;
  }

 private:
  uint32_t arity_;
  size_t rows_ = 0;
  std::vector<std::vector<TermId>> columns_;
};

/// FNV-1a over a predicate and its argument terms; the row-level analogue
/// of `AtomHash`.
inline uint64_t HashRow(PredicateId predicate, const TermId* terms,
                        size_t arity) {
  return HashIdSpan(predicate, terms, arity);
}

/// The fact-store dedup table: an id-keyed open-addressing set whose
/// entries reference rows of the columnar store instead of holding atom
/// copies.
using RowIdSet = IdHashSet;

/// Arena for posting-list chunks.  Every (position, term) posting list of
/// one predicate draws its chunks from a single pool, so appending an atom
/// to a fresh term's list is a bump allocation instead of a map-node plus
/// vector malloc pair.
class PostingPool {
 public:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr uint32_t kChunkVals = 6;

  struct Chunk {
    uint32_t next = kNil;
    uint32_t count = 0;
    uint32_t vals[kChunkVals];
  };

  uint32_t NewChunk() {
    chunks_.emplace_back();
    return static_cast<uint32_t>(chunks_.size() - 1);
  }

  Chunk& At(uint32_t i) { return chunks_[i]; }
  const Chunk& At(uint32_t i) const { return chunks_[i]; }

  /// Heap footprint of the chunk arena.
  uint64_t HeapBytes(MemAccounting mode) const {
    return VectorHeapBytes(chunks_, mode);
  }

 private:
  std::vector<Chunk> chunks_;
};

/// A read-only view of one posting list: either a chunked list inside a
/// `PostingPool` or a contiguous `uint32_t` range (so the same view type
/// can wrap the per-predicate index vector).  Iteration yields values in
/// append order.
class PostingList {
 public:
  class const_iterator {
   public:
    const_iterator() = default;
    explicit const_iterator(const uint32_t* p) : ptr_(p) {}
    const_iterator(const PostingPool* pool, uint32_t chunk)
        : pool_(pool), chunk_(chunk) {}

    uint32_t operator*() const {
      return pool_ != nullptr ? pool_->At(chunk_).vals[offset_] : *ptr_;
    }
    const_iterator& operator++() {
      if (pool_ != nullptr) {
        if (++offset_ >= pool_->At(chunk_).count) {
          chunk_ = pool_->At(chunk_).next;
          offset_ = 0;
        }
      } else {
        ++ptr_;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return ptr_ == o.ptr_ && chunk_ == o.chunk_ && offset_ == o.offset_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    const uint32_t* ptr_ = nullptr;
    const PostingPool* pool_ = nullptr;
    uint32_t chunk_ = PostingPool::kNil;
    uint32_t offset_ = 0;
  };

  PostingList() = default;
  PostingList(const uint32_t* data, size_t n) : ptr_(data), size_(n) {}
  PostingList(const PostingPool* pool, uint32_t head, size_t n)
      : pool_(pool), head_(head), size_(n) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// First value; the list must be non-empty.
  uint32_t front() const { return *begin(); }

  const_iterator begin() const {
    if (pool_ != nullptr) return const_iterator(pool_, head_);
    return const_iterator(ptr_);
  }
  const_iterator end() const {
    if (pool_ != nullptr) return const_iterator(pool_, PostingPool::kNil);
    return const_iterator(ptr_ + size_);
  }

 private:
  const uint32_t* ptr_ = nullptr;
  const PostingPool* pool_ = nullptr;
  uint32_t head_ = PostingPool::kNil;
  size_t size_ = 0;
};

/// Open-addressed map from `TermId` to a chunked posting list; the hash
/// side of the matcher's hash join.  Slots hold (key, head, tail, count)
/// inline — no per-entry nodes — and chunks come from the caller's
/// `PostingPool`.
class PostingMap {
 public:
  struct Entry {
    TermId key = 0;
    uint32_t head = PostingPool::kNil;
    uint32_t tail = PostingPool::kNil;
    uint32_t count = 0;
  };

  /// Appends `value` to `key`'s posting list (in append order).
  void Append(TermId key, uint32_t value, PostingPool& pool) {
    if (slots_.empty()) {
      slots_.resize(kInitialSlots);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Grow();
    }
    Entry& e = SlotFor(key);
    if (e.head == PostingPool::kNil) {
      e.key = key;
      e.head = e.tail = pool.NewChunk();
      ++size_;
    } else if (pool.At(e.tail).count == PostingPool::kChunkVals) {
      uint32_t fresh = pool.NewChunk();
      pool.At(e.tail).next = fresh;
      e.tail = fresh;
    }
    PostingPool::Chunk& tail = pool.At(e.tail);
    tail.vals[tail.count++] = value;
    ++e.count;
  }

  /// Heap footprint of the slot array (chunks live in the PostingPool).
  uint64_t HeapBytes(MemAccounting mode) const {
    const size_t n =
        mode == MemAccounting::kCapacity ? slots_.capacity() : size_;
    return static_cast<uint64_t>(n) * sizeof(Entry);
  }

  /// The entry for `key`, or nullptr if it has no postings.
  const Entry* Find(TermId key) const {
    if (slots_.empty()) return nullptr;
    size_t mask = slots_.size() - 1;
    size_t i = Hash(key) & mask;
    for (;;) {
      const Entry& e = slots_[i];
      if (e.head == PostingPool::kNil) return nullptr;
      if (e.key == key) return &e;
      i = (i + 1) & mask;
    }
  }

 private:
  static constexpr size_t kInitialSlots = 16;

  static size_t Hash(TermId key) {
    return static_cast<size_t>(key * 0x9E3779B97F4A7C15ull >> 32);
  }

  Entry& SlotFor(TermId key) {
    size_t mask = slots_.size() - 1;
    size_t i = Hash(key) & mask;
    for (;;) {
      Entry& e = slots_[i];
      if (e.head == PostingPool::kNil || e.key == key) return e;
      i = (i + 1) & mask;
    }
  }

  void Grow() {
    std::vector<Entry> old = std::move(slots_);
    slots_.assign(old.size() * 2, Entry{});
    for (const Entry& e : old) {
      if (e.head != PostingPool::kNil) SlotFor(e.key) = e;
    }
  }

  std::vector<Entry> slots_;
  size_t size_ = 0;
};

/// A batch of pending rows in commit order, possibly mixing predicates.
/// Terms are stored flat (offsets index into `terms`), so staging a row is
/// an append with no per-row allocation.
struct RowBlock {
  std::vector<PredicateId> predicates;
  std::vector<uint32_t> offsets;  // size rows()+1 once non-empty
  std::vector<TermId> terms;

  size_t rows() const { return predicates.size(); }
  bool empty() const { return predicates.empty(); }

  uint32_t Arity(size_t row) const { return offsets[row + 1] - offsets[row]; }
  const TermId* Terms(size_t row) const { return terms.data() + offsets[row]; }

  void Append(PredicateId predicate, const TermId* row_terms, size_t arity) {
    if (offsets.empty()) offsets.push_back(0);
    predicates.push_back(predicate);
    terms.insert(terms.end(), row_terms, row_terms + arity);
    offsets.push_back(static_cast<uint32_t>(terms.size()));
  }

  void Reserve(size_t row_count, size_t term_count) {
    predicates.reserve(row_count);
    offsets.reserve(row_count + 1);
    terms.reserve(term_count);
  }

  void Clear() {
    predicates.clear();
    offsets.clear();
    terms.clear();
  }

  /// Heap footprint of the three flat arrays.
  uint64_t HeapBytes(MemAccounting mode) const {
    return VectorHeapBytes(predicates, mode) + VectorHeapBytes(offsets, mode) +
           VectorHeapBytes(terms, mode);
  }
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_COLUMNAR_H_
