#include "base/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>

namespace frontiers::failpoint {

namespace internal {

std::atomic<uint32_t> g_armed_points{0};
std::atomic<bool> g_ever_armed{false};

namespace {

// One failpoint's schedule and history.  Entries are never removed:
// disarming zeroes `remaining` but keeps the counters, so FiredCount()
// stays meaningful across arm/disarm cycles.
struct PointState {
  uint64_t skip = 0;       // hits to ignore before firing starts
  uint64_t remaining = 0;  // fires left; 0 = disarmed
  uint64_t fired = 0;      // total fires since process start
  uint64_t hits = 0;       // total evaluations while armed
};

std::mutex& RegistryMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

std::unordered_map<std::string, PointState>& Registry() {
  static auto* r = new std::unordered_map<std::string, PointState>();
  return *r;
}

// Environment activation runs once, before main(): the initializer only
// touches this translation unit's own function-local statics, so static
// initialization order is not a concern.
struct EnvActivation {
  EnvActivation() {
    const char* spec = std::getenv("FRONTIERS_FAILPOINTS");
    if (spec != nullptr && *spec != '\0') ArmFromSpec(spec);
  }
} g_env_activation;

}  // namespace

bool Fire(std::string_view name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(std::string(name));
  if (it == Registry().end() || it->second.remaining == 0) return false;
  PointState& state = it->second;
  ++state.hits;
  if (state.skip > 0) {
    --state.skip;
    return false;
  }
  ++state.fired;
  if (--state.remaining == 0) {
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace internal

void Arm(std::string_view name, uint64_t fire_count, uint64_t skip) {
  if (fire_count == 0) {
    Disarm(name);
    return;
  }
  std::lock_guard<std::mutex> lock(internal::RegistryMutex());
  internal::PointState& state = internal::Registry()[std::string(name)];
  if (state.remaining == 0) {
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
  state.skip = skip;
  state.remaining = fire_count;
  internal::g_ever_armed.store(true, std::memory_order_relaxed);
}

void Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(internal::RegistryMutex());
  auto it = internal::Registry().find(std::string(name));
  if (it == internal::Registry().end() || it->second.remaining == 0) return;
  it->second.remaining = 0;
  it->second.skip = 0;
  internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(internal::RegistryMutex());
  for (auto& [name, state] : internal::Registry()) {
    if (state.remaining != 0) {
      state.remaining = 0;
      state.skip = 0;
      internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FiredCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(internal::RegistryMutex());
  auto it = internal::Registry().find(std::string(name));
  return it == internal::Registry().end() ? 0 : it->second.fired;
}

uint64_t HitCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(internal::RegistryMutex());
  auto it = internal::Registry().find(std::string(name));
  return it == internal::Registry().end() ? 0 : it->second.hits;
}

bool EverArmed() {
  return internal::g_ever_armed.load(std::memory_order_relaxed);
}

size_t ArmFromSpec(std::string_view spec) {
  size_t armed = 0;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(";,", start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    // Trim surrounding whitespace.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (entry.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    std::string_view name = entry;
    uint64_t fire_count = 1;
    uint64_t skip = 0;
    const size_t eq = entry.find('=');
    if (eq != std::string_view::npos) {
      name = entry.substr(0, eq);
      std::string_view counts = entry.substr(eq + 1);
      std::string_view count_part = counts;
      const size_t at = counts.find('@');
      if (at != std::string_view::npos) {
        count_part = counts.substr(0, at);
        std::string skip_str(counts.substr(at + 1));
        char* parse_end = nullptr;
        skip = std::strtoull(skip_str.c_str(), &parse_end, 10);
        if (skip_str.empty() || *parse_end != '\0') continue;
      }
      std::string count_str(count_part);
      char* parse_end = nullptr;
      fire_count = std::strtoull(count_str.c_str(), &parse_end, 10);
      if (count_str.empty() || *parse_end != '\0') continue;
    }
    if (name.empty() || fire_count == 0) continue;
    Arm(name, fire_count, skip);
    ++armed;
    if (end == spec.size()) break;
  }
  return armed;
}

}  // namespace frontiers::failpoint
