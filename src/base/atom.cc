#include "base/atom.h"

namespace frontiers {

std::string AtomToString(const Vocabulary& vocab, const Atom& atom) {
  std::string out = vocab.PredicateName(atom.predicate);
  out += "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ",";
    out += vocab.TermToString(atom.args[i]);
  }
  out += ")";
  return out;
}

std::string AtomsToString(const Vocabulary& vocab,
                          const std::vector<Atom>& atoms) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToString(vocab, atoms[i]);
  }
  return out;
}

}  // namespace frontiers
