#ifndef FRONTIERS_BASE_HASH_TABLE_H_
#define FRONTIERS_BASE_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/mem_ledger.h"

namespace frontiers {

/// FNV-1a over a leading tag and a span of 32-bit ids; shared by the fact
/// store (predicate + argument terms) and the Skolem hash-consing tables
/// (function/block + argument terms).
inline uint64_t HashIdSpan(uint32_t tag, const uint32_t* ids, size_t count) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(tag);
  for (size_t i = 0; i < count; ++i) mix(ids[i]);
  return h;
}

/// Open-addressing set of 32-bit ids.  The caller supplies the hash on
/// every probe and an equality callback that compares a candidate id
/// against the probe key, so the table stores no key copies at all — just
/// (hash, id) slots.  Storing the hash keeps rehashing a pure
/// redistribution (no callback needed) and short-circuits almost every
/// non-equal comparison.
class IdHashSet {
 public:
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  IdHashSet() { slots_.resize(kInitialSlots, Slot{0, kNotFound}); }

  size_t size() const { return size_; }

  /// Returns the stored id whose hash matches and for which `eq(id)` is
  /// true, or `kNotFound`.
  template <typename Eq>
  uint32_t Find(uint64_t hash, Eq&& eq) const {
    size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.id == kNotFound) return kNotFound;
      if (slot.hash == hash && eq(slot.id)) return slot.id;
    }
  }

  /// Inserts `id` if no equal entry exists; returns the resident id (the
  /// existing one on a duplicate, `id` on a fresh insert).
  template <typename Eq>
  uint32_t FindOrInsert(uint64_t hash, uint32_t id, Eq&& eq) {
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.id == kNotFound) {
        slot = Slot{hash, id};
        ++size_;
        return id;
      }
      if (slot.hash == hash && eq(slot.id)) return slot.id;
    }
  }

  /// Rewrites the id of the entry matching (`hash`, `eq`) to `new_id`;
  /// returns true if an entry was found.  The entry keeps its slot (the
  /// hash is unchanged), so probe chains are untouched.  Used by the
  /// sharded batch commit to promote provisional in-batch row markers to
  /// their final global atom ids.
  template <typename Eq>
  bool ReplaceId(uint64_t hash, Eq&& eq, uint32_t new_id) {
    size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.id == kNotFound) return false;
      if (slot.hash == hash && eq(slot.id)) {
        slot.id = new_id;
        return true;
      }
    }
  }

  /// Removes the entry matching (`hash`, `eq`) with backward-shift
  /// deletion (no tombstones: subsequent entries of the probe chain are
  /// moved back so every remaining entry stays reachable).  Returns true
  /// if an entry was removed.  Used to roll provisional batch entries
  /// back out after a mid-commit fault.
  template <typename Eq>
  bool Erase(uint64_t hash, Eq&& eq) {
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    for (;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.id == kNotFound) return false;
      if (slot.hash == hash && eq(slot.id)) break;
    }
    // Backward-shift: walk the cluster after the hole; any entry whose
    // natural position does not lie strictly inside (hole, j] can fill
    // the hole.
    size_t hole = i;
    for (size_t j = (i + 1) & mask;; j = (j + 1) & mask) {
      const Slot& cand = slots_[j];
      if (cand.id == kNotFound) break;
      const size_t natural = cand.hash & mask;
      // Distance (cyclic) from the candidate's natural slot to j vs from
      // the hole to j: the candidate may move to the hole iff its natural
      // slot is at or before the hole along the probe order.
      const size_t dist_natural = (j - natural) & mask;
      const size_t dist_hole = (j - hole) & mask;
      if (dist_natural >= dist_hole) {
        slots_[hole] = cand;
        hole = j;
      }
    }
    slots_[hole] = Slot{0, kNotFound};
    --size_;
    return true;
  }

  /// Heap footprint of the slot array.  Capacity mode reports what the
  /// vector reserved; content mode reports occupied slots only, since the
  /// table shape depends on growth/Reserve history a reconstruction may
  /// not replay (see MemAccounting).
  uint64_t HeapBytes(MemAccounting mode) const {
    const size_t n =
        mode == MemAccounting::kCapacity ? slots_.capacity() : size_;
    return static_cast<uint64_t>(n) * sizeof(Slot);
  }

  /// Pre-sizes the table for `n` total entries (one rehash up front
  /// instead of log(n) incremental ones during a bulk insert).
  void Reserve(size_t n) {
    size_t needed = kInitialSlots;
    while (n * 4 > needed * 3) needed <<= 1;
    if (needed > slots_.size()) Rehash(needed);
  }

 private:
  struct Slot {
    uint64_t hash;
    uint32_t id;
  };
  static constexpr size_t kInitialSlots = 64;

  void Grow() { Rehash(slots_.size() * 2); }

  void Rehash(size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{0, kNotFound});
    size_t mask = new_slot_count - 1;
    for (const Slot& slot : old) {
      if (slot.id == kNotFound) continue;
      size_t i = slot.hash & mask;
      while (slots_[i].id != kNotFound) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_HASH_TABLE_H_
