#ifndef FRONTIERS_BASE_FAILPOINT_H_
#define FRONTIERS_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace frontiers::failpoint {

/// Fault-injection points for the torture harness (DESIGN.md, "Torture
/// subsystem").  A failpoint is a named site in engine code written as
///
///   if (FRONTIERS_FAILPOINT("snapshot.write_io")) {
///     return Status::Error("injected failure at failpoint "
///                          "'snapshot.write_io'");
///   }
///
/// where the site's recovery path is exactly the one a real fault (failed
/// write, exhausted allocation) would take.  Torture runs arm points by
/// name — programmatically via Arm(), or through the FRONTIERS_FAILPOINTS
/// environment variable — and assert the engine degrades to a clean
/// `Status` / resumable stop instead of crashing or corrupting state.
///
/// Cost when disabled: the macro is one relaxed atomic load plus a branch
/// (the same budget as obs::Span's g_span_mask check) — no registry lookup,
/// no string handling.  The slow path behind the branch only runs while at
/// least one point is armed anywhere in the process.
///
/// Naming convention: `<subsystem>.<site>` lowercase, e.g. `chase.commit`,
/// `fact_set.insert_batch`, `snapshot.read_io`.  Names are string literals
/// at the site; arming an unknown name is allowed (it simply never fires
/// until code containing that site runs).

namespace internal {

/// Number of currently armed failpoints, process-wide.  Zero on the fast
/// path of every FRONTIERS_FAILPOINT evaluation in a process that never
/// arms anything.
extern std::atomic<uint32_t> g_armed_points;

/// Slow path of FRONTIERS_FAILPOINT: returns true if `name` is armed and
/// this hit consumes one of its remaining fires.
bool Fire(std::string_view name);

}  // namespace internal

/// Arms `name`: after skipping the next `skip` hits, the following
/// `fire_count` hits fire (return true from FRONTIERS_FAILPOINT), then the
/// point disarms itself.  Re-arming an already-armed point replaces its
/// schedule; fired-count history is preserved.
void Arm(std::string_view name, uint64_t fire_count = 1, uint64_t skip = 0);

/// Disarms `name` (no-op if not armed).  The fired-count history survives.
void Disarm(std::string_view name);

/// Disarms every point.  Fired-count histories survive.
void DisarmAll();

/// Total times `name` has fired since process start.
uint64_t FiredCount(std::string_view name);

/// Total times `name` was evaluated while armed (fired or skipped).
uint64_t HitCount(std::string_view name);

/// True if any failpoint was ever armed in this process.  Engine code uses
/// this to guard fault-detection bookkeeping that would otherwise cost a
/// map lookup per call on unarmed runs.
bool EverArmed();

/// Arms points from a spec string: `name[=fire_count[@skip]]` entries
/// separated by `;` or `,` — e.g. `"snapshot.write_io;chase.commit=2@1"`.
/// Returns the number of points armed; malformed entries are skipped.
/// The FRONTIERS_FAILPOINTS environment variable is parsed through this
/// once, before main() runs.
size_t ArmFromSpec(std::string_view spec);

}  // namespace frontiers::failpoint

/// True if the named failpoint is armed and this evaluation fires it.
/// `name` must be a string literal (or otherwise outlive the call).
#define FRONTIERS_FAILPOINT(name)                                  \
  (::frontiers::failpoint::internal::g_armed_points.load(          \
       std::memory_order_relaxed) != 0 &&                          \
   ::frontiers::failpoint::internal::Fire(name))

#endif  // FRONTIERS_BASE_FAILPOINT_H_
