#ifndef FRONTIERS_BASE_OBS_HOOKS_H_
#define FRONTIERS_BASE_OBS_HOOKS_H_

#include <atomic>
#include <cstdint>

/// Base-layer observability hooks.
///
/// The trace/profile/task consumers live in src/obs, which links *against*
/// frontiers_base — so base code (WorkerPool, FactSet) cannot call them
/// directly.  This header holds the two pieces both sides share:
///
///   * the process-wide span mask (one word; a disabled probe is exactly
///     one relaxed load of it, the overhead budget DESIGN.md §7 commits
///     to), historically defined in obs/trace.cc and moved here so base
///     code can test the same word instead of paying a second load;
///   * `taskhooks`: POD records plus atomic function-pointer slots the
///     task-stream session (obs/task_stream.h) installs at Start().  The
///     pointers are set with release semantics *before* the mask bit is
///     published and are never cleared, so an emitter that saw the bit is
///     guaranteed a valid target with an acquire load.
///
/// The namespace stays `frontiers::obs` although the file lives in
/// src/base: every existing use site spells `obs::internal::g_span_mask`
/// and `obs::Span`, and the mask is one logical object regardless of which
/// library defines it.
namespace frontiers::obs {

namespace internal {
/// Which span consumers are currently live, as a bitmask.  A disabled Span
/// costs exactly one relaxed load of this plus a branch — the overhead
/// budget the chase's parity guarantees are measured against (DESIGN.md
/// §7).  Sharing one word between the trace layer, the profiler, and the
/// task stream keeps that guarantee as consumers are added: the disabled
/// path never pays a second load.
inline constexpr uint32_t kSpanTrace = 1u << 0;    ///< TraceSession active.
inline constexpr uint32_t kSpanProfile = 1u << 1;  ///< ProfileSession active.
inline constexpr uint32_t kSpanTasks = 1u << 2;    ///< TaskStreamSession.
inline constexpr uint32_t kSpanMem = 1u << 3;      ///< MemStreamSession.
extern std::atomic<uint32_t> g_span_mask;

/// Monotonic nanoseconds (steady clock).  Only meaningful as differences —
/// except that every telemetry stream of one process shares this clock, so
/// tools/par_report can join trace events and task records by timestamp.
uint64_t NowNanos();
}  // namespace internal

namespace taskhooks {

/// One claimed task inside a WorkerPool batch.  `enqueue_ns` is the batch
/// publication time (tasks are claimed off a counter, not queued
/// individually), `queue_depth` the number of still-unclaimed tasks right
/// after this claim.
struct TaskRecord {
  uint64_t batch;       ///< Process-unique batch id (NextBatchId()).
  uint64_t task;        ///< Task index within the batch.
  uint32_t worker;      ///< 0 = the Run() caller, w+1 = background worker w.
  uint32_t queue_depth;
  uint64_t enqueue_ns;
  uint64_t start_ns;
  uint64_t finish_ns;
};

/// One WorkerPool::Run() batch, emitted after the batch quiesced.
struct BatchRecord {
  uint64_t batch;
  uint64_t count;    ///< Tasks in the batch.
  uint32_t threads;  ///< Workers that could claim (caller included).
  uint64_t enqueue_ns;
  uint64_t done_ns;
};

/// Per-shard contention summary for one FactSet batch insert: how long the
/// shard's committing task waited for vs held the shard mutex, and how many
/// rows it routed.
struct ShardRecord {
  uint64_t batch;  ///< Process-unique batch id (NextBatchId()).
  uint32_t shard;
  uint64_t rows;
  uint64_t wait_ns;
  uint64_t hold_ns;
};

using TaskFn = void (*)(const TaskRecord&);
using BatchFn = void (*)(const BatchRecord&);
using ShardFn = void (*)(const ShardRecord&);
using ThreadExitFn = void (*)();

extern std::atomic<TaskFn> g_task_fn;
extern std::atomic<BatchFn> g_batch_fn;
extern std::atomic<ShardFn> g_shard_fn;

/// Installs a hook; each slot is written at most once per process (the
/// sessions in src/obs are process-global singletons) with release order,
/// before the kSpanTasks bit is raised.
void SetTaskHooks(TaskFn task_fn, BatchFn batch_fn, ShardFn shard_fn);

/// Returns the next process-wide batch id (1-based, monotone).  WorkerPool
/// batches and FactSet batch inserts draw from the same counter so that
/// records from different pool/FactSet instances — e.g. successive runs of
/// one bench sweep — never collide in a `frontiers-tasks-v1` stream, which
/// keeps (batch, task) a sortable unique key across a whole process.
uint64_t NextBatchId();

/// Registers `fn` to run on every pool worker thread right before it
/// exits, so per-thread telemetry buffers are drained before the pool
/// joins the thread.  Idempotent per function pointer; at most a handful
/// of consumers (trace + task stream) register.
void RegisterThreadExitHook(ThreadExitFn fn);

/// True while a TaskStreamSession is active.  One relaxed load — the whole
/// disabled cost of the task telemetry.
inline bool TasksEnabled() {
  return (internal::g_span_mask.load(std::memory_order_relaxed) &
          internal::kSpanTasks) != 0;
}

inline void EmitTask(const TaskRecord& record) {
  if (TaskFn fn = g_task_fn.load(std::memory_order_acquire)) fn(record);
}

inline void EmitBatch(const BatchRecord& record) {
  if (BatchFn fn = g_batch_fn.load(std::memory_order_acquire)) fn(record);
}

inline void EmitShard(const ShardRecord& record) {
  if (ShardFn fn = g_shard_fn.load(std::memory_order_acquire)) fn(record);
}

/// Called by WorkerPool threads on their way out (before the join in the
/// pool destructor); runs every registered exit hook.
void NotifyWorkerThreadExit();

}  // namespace taskhooks

namespace memhooks {

/// One (component, predicate) byte-attribution row at a round boundary.
/// The chase emits rows in component-major, predicate-id order with only
/// deterministic values, so a `frontiers-mem-v1` stream is byte-identical
/// across thread counts (DESIGN.md §9).  The name pointers reference the
/// static component table and the vocabulary's interned predicate names;
/// both outlive the synchronous hook call.
struct MemRowRecord {
  uint64_t run;    ///< Session-local run ordinal (BeginMemRun()).
  uint64_t round;  ///< Completed chase rounds at this boundary.
  const char* component;
  const char* predicate;  ///< "" for components not owned by a predicate.
  uint64_t bytes;
};

/// One round-boundary summary.  `total_bytes`/`peak_bytes` are the
/// deterministic ledger figures; `scratch_bytes` is the thread-dependent
/// transient state, reported out-of-band so the deterministic rows stay
/// comparable across thread counts.  The session adds its own sampled
/// `rss_bytes` when it writes the diagnostic row.
struct MemRoundRecord {
  uint64_t run;
  uint64_t round;
  uint64_t atoms;
  uint64_t total_bytes;
  uint64_t peak_bytes;
  uint64_t scratch_bytes;
};

using MemRunFn = uint64_t (*)();
using MemRowFn = void (*)(const MemRowRecord&);
using MemRoundFn = void (*)(const MemRoundRecord&);

extern std::atomic<MemRunFn> g_mem_run_fn;
extern std::atomic<MemRowFn> g_mem_row_fn;
extern std::atomic<MemRoundFn> g_mem_round_fn;

/// Installs the mem hooks; written with release order before the
/// kSpanMem bit is raised, mirroring SetTaskHooks.
void SetMemHooks(MemRunFn run_fn, MemRowFn row_fn, MemRoundFn round_fn);

/// True while a MemStreamSession is active.  One relaxed load — the whole
/// disabled cost of the memory telemetry.
inline bool MemEnabled() {
  return (internal::g_span_mask.load(std::memory_order_relaxed) &
          internal::kSpanMem) != 0;
}

/// Claims a run ordinal from the active session.  Session-local (resets
/// at Start()) rather than taskhooks::NextBatchId on purpose: batch ids
/// advance with every pool batch, and batch *counts* vary with the
/// thread count, which would leak into the stream and break its
/// byte-identical-across-threads contract.  Returns 0 when no session is
/// active.
inline uint64_t BeginMemRun() {
  if (MemRunFn fn = g_mem_run_fn.load(std::memory_order_acquire)) return fn();
  return 0;
}

inline void EmitMemRow(const MemRowRecord& record) {
  if (MemRowFn fn = g_mem_row_fn.load(std::memory_order_acquire)) fn(record);
}

inline void EmitMemRound(const MemRoundRecord& record) {
  if (MemRoundFn fn = g_mem_round_fn.load(std::memory_order_acquire)) {
    fn(record);
  }
}

}  // namespace memhooks

}  // namespace frontiers::obs

#endif  // FRONTIERS_BASE_OBS_HOOKS_H_
