#ifndef FRONTIERS_BASE_STATUS_H_
#define FRONTIERS_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace frontiers {

/// Lightweight error-reporting type used across public API boundaries.
///
/// The library does not throw exceptions through its public interfaces (per
/// the project style rules); fallible operations return a `Status` or a
/// `Result<T>` instead.  A default-constructed `Status` is OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : ok_(true) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  /// Returns an error status carrying a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  /// True if this status represents success.
  bool ok() const { return ok_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_;
  std::string message_;
};

/// A value-or-error pair: either holds a `T` or an error `Status`.
///
/// This is a minimal `StatusOr`-style type; it intentionally supports only
/// the operations the library needs (construction from a value or an error
/// status, and checked access).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)), status_(Status::Ok()) {}

  /// Constructs a failed result from a non-OK status.  Constructing from an
  /// OK status is rejected: it would yield `ok() == true` with no stored
  /// value, making every later `value()` access undefined behaviour.
  Result(Status status) : status_(std::move(status)) {
    FRONTIERS_CHECK(!status_.ok(),
                    "Result constructed from an OK status carries no value; "
                    "construct from a value instead");
  }

  /// True if a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Checked access to the stored value. Must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// The stored value, or `fallback` when this result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

  /// The status message: empty when ok, the error text otherwise.
  const std::string& message() const { return status_.message(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_STATUS_H_
