#include "base/worker_pool.h"

namespace frontiers {

namespace {

uint32_t QueueDepthAfterClaim(size_t count, size_t claimed) {
  const size_t depth = count - claimed - 1;
  return depth > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(depth);
}

}  // namespace

WorkerPool::WorkerPool(uint32_t threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (uint32_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w + 1); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::DrainBatch(uint32_t worker) {
  // One relaxed load per drain, not per task: a batch is the unit a worker
  // participates in, and a session starting mid-batch only misses that
  // batch's remainder (benign — sessions start at phase boundaries).
  const bool telemetry = obs::taskhooks::TasksEnabled();
  // Claim tasks until the counter runs dry or a sibling failed.  A failed
  // batch stops dispatching new tasks but still drains the claimed ones,
  // so Run() can safely report completion before rethrowing.
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    uint64_t start_ns = 0;
    if (telemetry) start_ns = obs::internal::NowNanos();
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
      return;
    }
    if (telemetry) {
      obs::taskhooks::EmitTask({batch_seq_, i, worker,
                                QueueDepthAfterClaim(count_, i),
                                batch_enqueue_ns_, start_ns,
                                obs::internal::NowNanos()});
    }
  }
}

void WorkerPool::WorkerLoop(uint32_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) break;
      seen_generation = generation_;
    }
    DrainBatch(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++active_;  // repurposed as "workers done with this generation"
    }
    batch_done_.notify_all();
  }
  // Drain this thread's buffered telemetry (trace spans, task records)
  // before the destructor joins us: a session stopped after the pool died
  // must still see complete per-thread streams.
  obs::taskhooks::NotifyWorkerThreadExit();
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    if (!obs::taskhooks::TasksEnabled()) {
      // Inline execution: same semantics, no synchronization.
      for (size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    const uint64_t batch = obs::taskhooks::NextBatchId();
    const uint64_t enqueue_ns = obs::internal::NowNanos();
    for (size_t i = 0; i < count; ++i) {
      const uint64_t start_ns = obs::internal::NowNanos();
      fn(i);
      obs::taskhooks::EmitTask({batch, i, /*worker=*/0,
                                QueueDepthAfterClaim(count, i), enqueue_ns,
                                start_ns, obs::internal::NowNanos()});
    }
    obs::taskhooks::EmitBatch(
        {batch, count, /*threads=*/1, enqueue_ns, obs::internal::NowNanos()});
    return;
  }
  {
    // Publish the batch under the mutex: workers read fn_/count_ only
    // after observing the new generation under the same mutex, so these
    // plain writes are ordered before every worker access.
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = 0;
    ++generation_;
    batch_seq_ = obs::taskhooks::NextBatchId();
    batch_enqueue_ns_ =
        obs::taskhooks::TasksEnabled() ? obs::internal::NowNanos() : 0;
  }
  work_ready_.notify_all();
  DrainBatch(/*worker=*/0);  // the calling thread participates
  // Wait until EVERY background worker has finished this generation (not
  // merely until the task counter drained): a worker that woke late could
  // otherwise still be inside DrainBatch while the next batch replaces
  // fn_/count_ under it.
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock,
                   [&] { return active_ == workers_.size(); });
  fn_ = nullptr;
  const uint64_t batch = batch_seq_;
  const uint64_t enqueue_ns = batch_enqueue_ns_;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
  lock.unlock();
  if (obs::taskhooks::TasksEnabled()) {
    obs::taskhooks::EmitBatch(
        {batch, count, threads_, enqueue_ns, obs::internal::NowNanos()});
  }
}

}  // namespace frontiers
