#include "base/worker_pool.h"

namespace frontiers {

WorkerPool::WorkerPool(uint32_t threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (uint32_t w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::DrainBatch() {
  // Claim tasks until the counter runs dry or a sibling failed.  A failed
  // batch stops dispatching new tasks but still drains the claimed ones,
  // so Run() can safely report completion before rethrowing.
  for (;;) {
    if (failed_.load(std::memory_order_relaxed)) return;
    const size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
      return;
    }
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainBatch();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++active_;  // repurposed as "workers done with this generation"
    }
    batch_done_.notify_all();
  }
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Inline execution: same semantics, no synchronization.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    // Publish the batch under the mutex: workers read fn_/count_ only
    // after observing the new generation under the same mutex, so these
    // plain writes are ordered before every worker access.
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_task_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();
  DrainBatch();  // the calling thread participates
  // Wait until EVERY background worker has finished this generation (not
  // merely until the task counter drained): a worker that woke late could
  // otherwise still be inside DrainBatch while the next batch replaces
  // fn_/count_ under it.
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock,
                   [&] { return active_ == workers_.size(); });
  fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace frontiers
