#include "base/vocabulary.h"

#include <algorithm>

#include "base/check.h"

namespace frontiers {

namespace {

// Encodes a Skolem block key: the raw function-id tuple.  Block
// registration is once-per-rule cold path, so a string key is fine here;
// the per-row and per-term hot paths probe id-keyed tables instead.
std::string SkolemBlockKey(const std::vector<SkolemFnId>& fns) {
  std::string key;
  key.reserve(4 * fns.size());
  for (SkolemFnId f : fns) {
    key.append(reinterpret_cast<const char*>(&f), sizeof(f));
  }
  return key;
}

}  // namespace

PredicateId Vocabulary::AddPredicate(std::string_view name, uint32_t arity) {
  auto it = predicate_index_.find(std::string(name));
  if (it != predicate_index_.end()) {
    FRONTIERS_CHECK(predicates_[it->second].arity == arity,
                    "predicate '" + std::string(name) +
                        "' redeclared with arity " + std::to_string(arity) +
                        " (was " +
                        std::to_string(predicates_[it->second].arity) + ")");
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back({std::string(name), arity});
  predicate_index_.emplace(std::string(name), id);
  return id;
}

std::optional<PredicateId> Vocabulary::FindPredicate(
    std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  if (it == predicate_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::PredicateName(PredicateId p) const {
  return predicates_[p].name;
}

uint32_t Vocabulary::PredicateArity(PredicateId p) const {
  return predicates_[p].arity;
}

TermId Vocabulary::Constant(std::string_view name) {
  auto it = constant_index_.find(std::string(name));
  if (it != constant_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  TermData data;
  data.kind = TermKind::kConstant;
  data.name_index = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  terms_.push_back(std::move(data));
  constant_index_.emplace(std::string(name), id);
  return id;
}

TermId Vocabulary::Variable(std::string_view name) {
  auto it = variable_index_.find(std::string(name));
  if (it != variable_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  TermData data;
  data.kind = TermKind::kVariable;
  data.name_index = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  terms_.push_back(std::move(data));
  variable_index_.emplace(std::string(name), id);
  return id;
}

TermId Vocabulary::FreshVariable(std::string_view prefix) {
  for (;;) {
    std::string name =
        std::string(prefix) + "#" + std::to_string(fresh_counter_++);
    if (variable_index_.find(name) == variable_index_.end()) {
      return Variable(name);
    }
  }
}

TermId Vocabulary::SkolemTerm(SkolemFnId fn, const std::vector<TermId>& args) {
  FRONTIERS_CHECK(
      skolem_fns_[fn].arity == args.size(),
      "Skolem term arity mismatch for function " + skolem_fns_[fn].signature +
          ": got " + std::to_string(args.size()) + " arguments, expected " +
          std::to_string(skolem_fns_[fn].arity));
  uint64_t hash = HashIdSpan(fn, args.data(), args.size());
  TermId next = static_cast<TermId>(terms_.size());
  TermId id = skolem_term_index_.FindOrInsert(hash, next, [&](TermId t) {
    return SkolemTermEquals(t, fn, args);
  });
  if (id != next) return id;
  TermData data;
  data.kind = TermKind::kSkolem;
  data.fn = fn;
  data.args = args;
  uint32_t depth = 0;
  for (TermId a : args) depth = std::max(depth, terms_[a].depth);
  data.depth = depth + 1;
  terms_.push_back(std::move(data));
  term_args_bytes_ += static_cast<uint64_t>(args.size()) * sizeof(TermId);
  return id;
}

uint32_t Vocabulary::SkolemBlock(const std::vector<SkolemFnId>& fns) {
  FRONTIERS_CHECK(!fns.empty(), "Skolem block must have at least one fn");
  uint32_t arity = skolem_fns_[fns[0]].arity;
  for (SkolemFnId f : fns) {
    FRONTIERS_CHECK(skolem_fns_[f].arity == arity,
                    "Skolem block functions must share one arity");
  }
  std::string key = SkolemBlockKey(fns);
  auto it = skolem_block_index_.find(key);
  if (it != skolem_block_index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(skolem_blocks_.size());
  skolem_blocks_.push_back({static_cast<uint32_t>(skolem_block_fns_.size()),
                            static_cast<uint32_t>(fns.size()), arity});
  skolem_block_fns_.insert(skolem_block_fns_.end(), fns.begin(), fns.end());
  skolem_block_index_.emplace(std::move(key), id);
  return id;
}

const TermId* Vocabulary::SkolemRow(uint32_t block,
                                    const std::vector<TermId>& args) {
  const SkolemBlockData& data = skolem_blocks_[block];
  FRONTIERS_CHECK(data.arity == args.size(),
                  "Skolem row arity mismatch for block");
  // One probe keyed by (block, args).  Rows of the same block share the
  // argument tuple across all their terms, so equality checks the block id
  // and the first term's argument vector.
  uint64_t hash = HashIdSpan(block, args.data(), args.size());
  uint32_t next = static_cast<uint32_t>(skolem_rows_.size());
  uint32_t row = skolem_row_index_.FindOrInsert(hash, next, [&](uint32_t r) {
    const SkolemRowData& existing = skolem_rows_[r];
    return existing.block == block &&
           terms_[skolem_row_terms_[existing.terms_offset]].args == args;
  });
  if (row != next) {
    return skolem_row_terms_.data() + skolem_rows_[row].terms_offset;
  }
  // Miss: intern each null through the per-term hash-consing table, so the
  // row agrees with any prior `SkolemTerm` calls (isomorphic heads in
  // other rules may already have created some of these terms).
  uint32_t offset = static_cast<uint32_t>(skolem_row_terms_.size());
  const SkolemFnId* fns = skolem_block_fns_.data() + data.fns_offset;
  for (uint32_t i = 0; i < data.size; ++i) {
    skolem_row_terms_.push_back(SkolemTerm(fns[i], args));
  }
  skolem_rows_.push_back({block, offset});
  return skolem_row_terms_.data() + offset;
}

const TermId* Vocabulary::FindSkolemRow(uint32_t block,
                                        const std::vector<TermId>& args) const {
  const SkolemBlockData& data = skolem_blocks_[block];
  FRONTIERS_CHECK(data.arity == args.size(),
                  "Skolem row arity mismatch for block");
  uint64_t hash = HashIdSpan(block, args.data(), args.size());
  uint32_t row = skolem_row_index_.Find(hash, [&](uint32_t r) {
    const SkolemRowData& existing = skolem_rows_[r];
    return existing.block == block &&
           terms_[skolem_row_terms_[existing.terms_offset]].args == args;
  });
  if (row == IdHashSet::kNotFound) return nullptr;
  return skolem_row_terms_.data() + skolem_rows_[row].terms_offset;
}

SkolemFnId Vocabulary::SkolemFunction(std::string_view signature,
                                      uint32_t arity) {
  auto it = skolem_fn_index_.find(std::string(signature));
  if (it != skolem_fn_index_.end()) {
    FRONTIERS_CHECK(skolem_fns_[it->second].arity == arity,
                    "Skolem function '" + std::string(signature) +
                        "' redeclared with arity " + std::to_string(arity) +
                        " (was " +
                        std::to_string(skolem_fns_[it->second].arity) + ")");
    return it->second;
  }
  SkolemFnId id = static_cast<SkolemFnId>(skolem_fns_.size());
  skolem_fns_.push_back({std::string(signature), arity});
  skolem_fn_index_.emplace(std::string(signature), id);
  return id;
}

const std::string& Vocabulary::TermName(TermId t) const {
  return names_[terms_[t].name_index];
}

void Vocabulary::AccountHeap(MemTotals& totals, MemAccounting mode) const {
  const auto strings = [mode](const auto& container, auto&& key_of) {
    uint64_t sum = 0;
    for (const auto& item : container) sum += StringHeapBytes(key_of(item), mode);
    return sum;
  };
  uint64_t terms = VectorHeapBytes(terms_, mode) +
                   VectorHeapBytes(names_, mode) +
                   strings(names_, [](const std::string& s) -> const std::string& {
                     return s;
                   }) +
                   VectorHeapBytes(predicates_, mode) +
                   strings(predicates_, [](const PredicateData& p) -> const std::string& {
                     return p.name;
                   });
  const auto string_map = [&](const auto& map, size_t node_payload) {
    uint64_t sum = UnorderedOverheadBytes(map.bucket_count(), map.size(),
                                          node_payload, mode);
    for (const auto& [key, value] : map) sum += StringHeapBytes(key, mode);
    return sum;
  };
  terms += string_map(predicate_index_,
                      sizeof(std::pair<const std::string, PredicateId>));
  terms += string_map(constant_index_,
                      sizeof(std::pair<const std::string, TermId>));
  terms += string_map(variable_index_,
                      sizeof(std::pair<const std::string, TermId>));
  totals.Add(MemComponent::kVocabTerms, terms);

  uint64_t skolem =
      term_args_bytes_ + skolem_term_index_.HeapBytes(mode) +
      VectorHeapBytes(skolem_fns_, mode) +
      strings(skolem_fns_, [](const SkolemFnData& f) -> const std::string& {
        return f.signature;
      }) +
      string_map(skolem_fn_index_,
                 sizeof(std::pair<const std::string, SkolemFnId>));
  if (mode == MemAccounting::kCapacity) {
    // The block/row tables are derived caches: they memoize (block, args)
    // probes and are rebuilt lazily after a process restart, so a resumed
    // vocabulary holds a different row population than the original's even
    // though the logical term state is identical.  Content mode — defined
    // as a pure function of logical state — therefore excludes them; they
    // are real bytes, so capacity mode (the stream / RSS-coverage figure)
    // keeps them.
    skolem += VectorHeapBytes(skolem_blocks_, mode) +
              VectorHeapBytes(skolem_block_fns_, mode) +
              string_map(skolem_block_index_,
                         sizeof(std::pair<const std::string, uint32_t>)) +
              VectorHeapBytes(skolem_rows_, mode) +
              VectorHeapBytes(skolem_row_terms_, mode) +
              skolem_row_index_.HeapBytes(mode);
  }
  totals.Add(MemComponent::kVocabSkolem, skolem);
}

std::string Vocabulary::TermToString(TermId t) const {
  const TermData& data = terms_[t];
  switch (data.kind) {
    case TermKind::kConstant:
    case TermKind::kVariable:
      return names_[data.name_index];
    case TermKind::kSkolem: {
      std::string out = "f" + std::to_string(data.fn) + "(";
      for (size_t i = 0; i < data.args.size(); ++i) {
        if (i > 0) out += ",";
        out += TermToString(data.args[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace frontiers
