#include "base/vocabulary.h"

#include <algorithm>

#include "base/check.h"

namespace frontiers {

namespace {

// Encodes a Skolem term key as a compact string: fn id followed by the raw
// argument ids.  String keys keep the hash-consing table simple and fully
// deterministic.
std::string SkolemKey(SkolemFnId fn, const std::vector<TermId>& args) {
  std::string key;
  key.reserve(4 + 4 * args.size());
  key.append(reinterpret_cast<const char*>(&fn), sizeof(fn));
  for (TermId a : args) {
    key.append(reinterpret_cast<const char*>(&a), sizeof(a));
  }
  return key;
}

}  // namespace

PredicateId Vocabulary::AddPredicate(std::string_view name, uint32_t arity) {
  auto it = predicate_index_.find(std::string(name));
  if (it != predicate_index_.end()) {
    FRONTIERS_CHECK(predicates_[it->second].arity == arity,
                    "predicate '" + std::string(name) +
                        "' redeclared with arity " + std::to_string(arity) +
                        " (was " +
                        std::to_string(predicates_[it->second].arity) + ")");
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back({std::string(name), arity});
  predicate_index_.emplace(std::string(name), id);
  return id;
}

std::optional<PredicateId> Vocabulary::FindPredicate(
    std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  if (it == predicate_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::PredicateName(PredicateId p) const {
  return predicates_[p].name;
}

uint32_t Vocabulary::PredicateArity(PredicateId p) const {
  return predicates_[p].arity;
}

TermId Vocabulary::Constant(std::string_view name) {
  auto it = constant_index_.find(std::string(name));
  if (it != constant_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  TermData data;
  data.kind = TermKind::kConstant;
  data.name_index = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  terms_.push_back(std::move(data));
  constant_index_.emplace(std::string(name), id);
  return id;
}

TermId Vocabulary::Variable(std::string_view name) {
  auto it = variable_index_.find(std::string(name));
  if (it != variable_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  TermData data;
  data.kind = TermKind::kVariable;
  data.name_index = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  terms_.push_back(std::move(data));
  variable_index_.emplace(std::string(name), id);
  return id;
}

TermId Vocabulary::FreshVariable(std::string_view prefix) {
  for (;;) {
    std::string name =
        std::string(prefix) + "#" + std::to_string(fresh_counter_++);
    if (variable_index_.find(name) == variable_index_.end()) {
      return Variable(name);
    }
  }
}

TermId Vocabulary::SkolemTerm(SkolemFnId fn, const std::vector<TermId>& args) {
  FRONTIERS_CHECK(
      skolem_fns_[fn].arity == args.size(),
      "Skolem term arity mismatch for function " + skolem_fns_[fn].signature +
          ": got " + std::to_string(args.size()) + " arguments, expected " +
          std::to_string(skolem_fns_[fn].arity));
  std::string key = SkolemKey(fn, args);
  auto it = skolem_term_index_.find(key);
  if (it != skolem_term_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  TermData data;
  data.kind = TermKind::kSkolem;
  data.fn = fn;
  data.args = args;
  uint32_t depth = 0;
  for (TermId a : args) depth = std::max(depth, terms_[a].depth);
  data.depth = depth + 1;
  terms_.push_back(std::move(data));
  skolem_term_index_.emplace(std::move(key), id);
  return id;
}

SkolemFnId Vocabulary::SkolemFunction(std::string_view signature,
                                      uint32_t arity) {
  auto it = skolem_fn_index_.find(std::string(signature));
  if (it != skolem_fn_index_.end()) {
    FRONTIERS_CHECK(skolem_fns_[it->second].arity == arity,
                    "Skolem function '" + std::string(signature) +
                        "' redeclared with arity " + std::to_string(arity) +
                        " (was " +
                        std::to_string(skolem_fns_[it->second].arity) + ")");
    return it->second;
  }
  SkolemFnId id = static_cast<SkolemFnId>(skolem_fns_.size());
  skolem_fns_.push_back({std::string(signature), arity});
  skolem_fn_index_.emplace(std::string(signature), id);
  return id;
}

const std::string& Vocabulary::TermName(TermId t) const {
  return names_[terms_[t].name_index];
}

std::string Vocabulary::TermToString(TermId t) const {
  const TermData& data = terms_[t];
  switch (data.kind) {
    case TermKind::kConstant:
    case TermKind::kVariable:
      return names_[data.name_index];
    case TermKind::kSkolem: {
      std::string out = "f" + std::to_string(data.fn) + "(";
      for (size_t i = 0; i < data.args.size(); ++i) {
        if (i > 0) out += ",";
        out += TermToString(data.args[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace frontiers
