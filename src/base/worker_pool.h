#ifndef FRONTIERS_BASE_WORKER_POOL_H_
#define FRONTIERS_BASE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/obs_hooks.h"

namespace frontiers {

/// A persistent pool of worker threads executing indexed task batches.
///
/// The chase used to spawn fresh `std::thread`s for every round's match
/// phase; at production round counts (E17a runs 80 rounds) the spawn/join
/// cost dominated small rounds and regressed 2-thread runs below the serial
/// engine.  The pool keeps `threads - 1` workers parked on a condition
/// variable across rounds and phases, so dispatching a batch costs one
/// notify instead of N thread creations.
///
/// `Run(count, fn)` executes `fn(task_index)` for every index in
/// `[0, count)`.  Tasks are claimed off a shared atomic counter (dynamic
/// load balancing — the same discipline the inline match loop used), the
/// calling thread participates as the last worker, and the call returns
/// only after every claimed task finished.  The first exception thrown by
/// any task stops further dispatch and is rethrown on the calling thread
/// after the batch quiesces.
///
/// Determinism contract: the pool never influences *what* is computed, only
/// *who* computes it.  Callers must make each task write to its own
/// disjoint output slot (indexed by task id) and merge in task order, which
/// is exactly how the chase's match buffers and the fact store's per-shard
/// commit use it.
///
/// Task telemetry: while a TaskStreamSession (obs/task_stream.h) is active
/// the pool records every claimed task (enqueue/start/finish, claiming
/// worker, queue depth at claim) and every batch through the taskhooks in
/// base/obs_hooks.h.  Telemetry is pure observation — it never affects
/// claiming order semantics — and when disabled costs one relaxed load of
/// the shared span mask per worker per batch.
class WorkerPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// values <= 1 create no background threads (Run executes inline).
  explicit WorkerPool(uint32_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers a batch can use (background threads + the caller).
  uint32_t threads() const { return threads_; }

  /// Runs `fn(i)` for every `i` in `[0, count)`; blocks until all tasks
  /// finished; rethrows the first task exception.  Not reentrant: one
  /// batch at a time (the chase's phases are strictly sequential).
  void Run(size_t count, const std::function<void(size_t)>& fn);

 private:
  // `worker` is a stable telemetry id: 0 for the Run() caller, w+1 for
  // background worker w.
  void WorkerLoop(uint32_t worker);
  void DrainBatch(uint32_t worker);

  const uint32_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  // Batch state, published under mutex_ and consumed lock-free through the
  // atomic task counter.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t count_ = 0;
  uint64_t generation_ = 0;
  // Telemetry identity of the current batch (a process-unique id from
  // obs::taskhooks::NextBatchId()), published with fn_/count_ (and
  // therefore ordered the same way); read by workers only while the batch
  // is live.  enqueue is 0 when no task stream was active at publication.
  uint64_t batch_seq_ = 0;
  uint64_t batch_enqueue_ns_ = 0;
  // Background workers that finished the current generation; Run returns
  // only once every worker acknowledged, so no straggler can outlive a
  // batch into the next one.
  uint32_t active_ = 0;
  bool shutdown_ = false;
  std::atomic<size_t> next_task_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_WORKER_POOL_H_
