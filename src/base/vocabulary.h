#ifndef FRONTIERS_BASE_VOCABULARY_H_
#define FRONTIERS_BASE_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/hash_table.h"
#include "base/mem_ledger.h"

namespace frontiers {

/// Identifier of a relation symbol within a Vocabulary.
using PredicateId = uint32_t;
/// Identifier of a term (constant, variable, or Skolem term).
using TermId = uint32_t;
/// Identifier of an interned Skolem function symbol.
using SkolemFnId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kNoTerm = UINT32_MAX;
/// Sentinel for "no predicate".
inline constexpr PredicateId kNoPredicate = UINT32_MAX;

/// The kind of a term.
enum class TermKind : uint8_t {
  kConstant,  ///< A database constant (element of some instance domain).
  kVariable,  ///< A query / rule variable.
  kSkolem,    ///< A chase-invented Skolem term `f(t1,...,tk)`.
};

/// Interning tables for a signature: relation symbols, constants, variables
/// and hash-consed Skolem terms.
///
/// A single `Vocabulary` underlies every structure, query and theory that
/// interact with each other.  Two design points matter for faithfulness to
/// the paper:
///
///  1. **Skolem terms are hash-consed.**  `SkolemTerm(f, args)` returns the
///     *same* `TermId` for the same function symbol and arguments, so chases
///     of different instances over the same vocabulary produce literally
///     identical atoms where the paper's Skolem naming convention says they
///     must (Observation 8: `Ch(T,F) = Ch(T,D)` literally, not up to
///     isomorphism).  This is what makes "unions of chases" (Definition 30,
///     locality) a meaningful set operation.
///
///  2. **Skolem function symbols are keyed by isomorphism type.**  Section 3
///     (Definition 3/4) requires `f_i^tau` to depend only on the isomorphism
///     type `tau` of the rule head, not on the rule identity; the `tgd`
///     module computes a canonical signature string for the head type and
///     interns the function symbol through `SkolemFunction`, so isomorphic
///     heads in different rules share Skolem functions exactly as the paper
///     prescribes.
///
/// TermIds and PredicateIds are dense indices, suitable for use in vectors.
///
/// **Concurrency contract.**  A Vocabulary is *not* internally
/// synchronized.  Concurrent const access (lookups, `Kind`, `SkolemArgs`,
/// rendering) is safe; any mutating call (`AddPredicate`, `Constant`,
/// `SkolemTerm`, ...) requires exclusive access.  The chase engine's
/// parallel match phase honours this by keeping workers read-only and
/// deferring all Skolem interning to its single-threaded commit phase,
/// which also keeps TermId assignment deterministic (see DESIGN.md,
/// "Parallel round pipeline").
class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabularies are identity objects shared by reference; copying one would
  // silently split the hash-consing tables, so copies are disabled.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;

  // --- Predicates ---------------------------------------------------------

  /// Interns a relation symbol.  If `name` is already known its arity must
  /// match; a mismatch aborts (it is a programming error, not input error).
  PredicateId AddPredicate(std::string_view name, uint32_t arity);

  /// Looks up a relation symbol by name.
  std::optional<PredicateId> FindPredicate(std::string_view name) const;

  /// Name of a relation symbol.
  const std::string& PredicateName(PredicateId p) const;

  /// Arity of a relation symbol.
  uint32_t PredicateArity(PredicateId p) const;

  /// Number of interned relation symbols.
  uint32_t NumPredicates() const {
    return static_cast<uint32_t>(predicates_.size());
  }

  // --- Terms ---------------------------------------------------------------

  /// Interns a constant.
  TermId Constant(std::string_view name);

  /// Interns a variable.
  TermId Variable(std::string_view name);

  /// Returns a variable with a name not used by any previously interned
  /// variable (of the form `prefix#k`).
  TermId FreshVariable(std::string_view prefix);

  /// Interns (hash-consing) the Skolem term `fn(args...)`.
  TermId SkolemTerm(SkolemFnId fn, const std::vector<TermId>& args);

  /// Interns a Skolem function symbol under a canonical `signature` string.
  /// Callers (the `tgd` module) are responsible for making `signature`
  /// canonical for the head isomorphism type + position, per Definition 4.
  SkolemFnId SkolemFunction(std::string_view signature, uint32_t arity);

  // --- Skolem blocks --------------------------------------------------------
  //
  // A rule head with k > 0 existentials owns the Skolem function tuple
  // (f_1, ..., f_k), all applied to the same frontier argument tuple.  The
  // chase's commit phase registers that tuple once as a *block* and then
  // interns each application's k nulls as one row — a single hash probe per
  // application instead of one string-keyed lookup per null.  Rows are
  // hash-consed against the per-term table too, so `SkolemTerm(f_i, args)`
  // and `SkolemRow(block, args)[i]` always agree (Observation 8 still
  // holds across blocks and rules sharing isomorphic heads).

  /// Registers the Skolem function tuple `fns` (all arities must match) as
  /// a block; tuples with identical contents share a block id.  `fns` must
  /// be non-empty.
  uint32_t SkolemBlock(const std::vector<SkolemFnId>& fns);

  /// Number of functions in a block.
  uint32_t SkolemBlockSize(uint32_t block) const {
    return skolem_blocks_[block].size;
  }

  /// Interns (or finds) the row of Skolem nulls `f_i(args)` for every
  /// `f_i` of `block`, with one probe on the hit path.  Returns a pointer
  /// to `SkolemBlockSize(block)` TermIds, valid until the next mutating
  /// call on this vocabulary — copy out what you need.
  const TermId* SkolemRow(uint32_t block, const std::vector<TermId>& args);

  /// Pure lookup twin of `SkolemRow`: returns the interned row, or nullptr
  /// if `(block, args)` was never interned.  Const, so safe to call
  /// concurrently from many threads while nothing mutates the vocabulary —
  /// the chase's parallel commit expansion probes here and defers all
  /// misses to per-thread arenas resolved by a serial renumbering pass
  /// (DESIGN.md §5, "Sharded commit pipeline").
  const TermId* FindSkolemRow(uint32_t block,
                              const std::vector<TermId>& args) const;

  /// Kind of a term.
  TermKind Kind(TermId t) const { return terms_[t].kind; }

  /// True if `t` is a constant.
  bool IsConstant(TermId t) const { return Kind(t) == TermKind::kConstant; }
  /// True if `t` is a variable.
  bool IsVariable(TermId t) const { return Kind(t) == TermKind::kVariable; }
  /// True if `t` is a Skolem term.
  bool IsSkolem(TermId t) const { return Kind(t) == TermKind::kSkolem; }

  /// Name of a constant or variable (not valid for Skolem terms).
  const std::string& TermName(TermId t) const;

  /// Function symbol of a Skolem term.
  SkolemFnId SkolemFn(TermId t) const { return terms_[t].fn; }

  /// Arguments of a Skolem term.
  const std::vector<TermId>& SkolemArgs(TermId t) const {
    return terms_[t].args;
  }

  /// Canonical signature string of a Skolem function symbol.
  const std::string& SkolemFnSignature(SkolemFnId f) const {
    return skolem_fns_[f].signature;
  }

  /// Arity of a Skolem function symbol.
  uint32_t SkolemFnArity(SkolemFnId f) const { return skolem_fns_[f].arity; }

  /// Number of interned Skolem function symbols.
  uint32_t NumSkolemFns() const {
    return static_cast<uint32_t>(skolem_fns_.size());
  }

  /// Number of interned terms (of all kinds).
  uint32_t NumTerms() const { return static_cast<uint32_t>(terms_.size()); }

  /// Skolem nesting depth of a term: 0 for constants/variables, and
  /// `1 + max(depth(args))` for Skolem terms.  This equals the chase stage
  /// at which the term is born and is used by depth-bounded experiments.
  uint32_t TermDepth(TermId t) const { return terms_[t].depth; }

  /// Human-readable rendering of a term (Skolem terms print as `f12(...)`).
  std::string TermToString(TermId t) const;

  /// Adds the vocabulary's heap footprint into `totals`: the term table,
  /// names and name indexes under kVocabTerms, and everything the chase's
  /// Skolem interning grows — argument vectors, hash-consing tables,
  /// blocks, rows — under kVocabSkolem.  O(predicates + named terms +
  /// skolem fns/blocks), i.e. independent of the number of Skolem terms
  /// (their argument bytes are carried by an exact running counter).
  void AccountHeap(MemTotals& totals, MemAccounting mode) const;

 private:
  struct TermData {
    TermKind kind;
    uint32_t name_index = 0;  // for constants/variables: index into names_
    SkolemFnId fn = 0;        // for Skolem terms
    std::vector<TermId> args;
    uint32_t depth = 0;
  };
  struct PredicateData {
    std::string name;
    uint32_t arity;
  };
  struct SkolemFnData {
    std::string signature;
    uint32_t arity;
  };
  struct SkolemBlockData {
    uint32_t fns_offset;  // into skolem_block_fns_
    uint32_t size;
    uint32_t arity;  // shared arity of every fn in the block
  };
  struct SkolemRowData {
    uint32_t block;
    uint32_t terms_offset;  // into skolem_row_terms_
  };

  /// True if term `t` is the Skolem term `fn(args...)`.
  bool SkolemTermEquals(TermId t, SkolemFnId fn,
                        const std::vector<TermId>& args) const {
    const TermData& data = terms_[t];
    return data.kind == TermKind::kSkolem && data.fn == fn &&
           data.args == args;
  }

  std::vector<PredicateData> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_index_;

  std::vector<TermData> terms_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, TermId> constant_index_;
  std::unordered_map<std::string, TermId> variable_index_;

  std::vector<SkolemFnData> skolem_fns_;
  std::unordered_map<std::string, SkolemFnId> skolem_fn_index_;
  // Hash-consing table for Skolem terms: an id-keyed open-addressing set
  // probing (fn, args) directly against `terms_` — no key copies.
  IdHashSet skolem_term_index_;

  // Skolem blocks (rule-head existential tuples) and their interned rows.
  std::vector<SkolemBlockData> skolem_blocks_;
  std::vector<SkolemFnId> skolem_block_fns_;
  std::unordered_map<std::string, uint32_t> skolem_block_index_;
  std::vector<SkolemRowData> skolem_rows_;
  std::vector<TermId> skolem_row_terms_;
  IdHashSet skolem_row_index_;

  uint64_t fresh_counter_ = 0;
  // Exact heap bytes of all interned terms' argument vectors.  Every
  // construction path copy-allocates the exact arity, so capacity == size
  // and one running counter serves both accounting modes.
  uint64_t term_args_bytes_ = 0;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_VOCABULARY_H_
