#include "base/bignat.h"

#include <algorithm>

namespace frontiers {

BigNat::BigNat(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value & 0xffffffffu));
    uint32_t high = static_cast<uint32_t>(value >> 32);
    if (high != 0) limbs_.push_back(high);
  }
}

BigNat BigNat::Pow(uint32_t base, uint32_t exponent) {
  BigNat result(1);
  for (uint32_t i = 0; i < exponent; ++i) result.MulSmall(base);
  return result;
}

uint64_t BigNat::ToUint64Saturating() const {
  if (limbs_.size() > 2) return UINT64_MAX;
  uint64_t v = 0;
  if (limbs_.size() >= 1) v = limbs_[0];
  if (limbs_.size() == 2) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

BigNat& BigNat::operator+=(const BigNat& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    limbs_[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigNat& BigNat::MulSmall(uint32_t factor) {
  if (factor == 0) {
    limbs_.clear();
    return *this;
  }
  uint64_t carry = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t prod = static_cast<uint64_t>(limbs_[i]) * factor + carry;
    limbs_[i] = static_cast<uint32_t>(prod & 0xffffffffu);
    carry = prod >> 32;
  }
  while (carry != 0) {
    limbs_.push_back(static_cast<uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
  return *this;
}

int BigNat::Compare(const BigNat& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

void BigNat::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

uint32_t BigNat::DivModSmall(uint32_t divisor) {
  uint64_t remainder = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (remainder << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  Trim();
  return static_cast<uint32_t>(remainder);
}

std::string BigNat::ToString() const {
  if (IsZero()) return "0";
  BigNat copy = *this;
  std::string digits;
  while (!copy.IsZero()) {
    uint32_t chunk = copy.DivModSmall(1000000000u);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace frontiers
