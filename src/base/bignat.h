#ifndef FRONTIERS_BASE_BIGNAT_H_
#define FRONTIERS_BASE_BIGNAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace frontiers {

/// Arbitrary-precision unsigned integer.
///
/// The rank machinery of Section 11 of the paper (elevations `3^|Q_R|` and
/// path costs, Definitions 60-62) produces values that overflow 64 bits
/// already for modest queries, and the termination certificate of the
/// five-operation rewriting process must compare such values *exactly*.
/// `BigNat` provides the handful of exact operations that machinery needs:
/// addition, multiplication by a small factor, exponentiation with a small
/// base, and total-order comparison.
///
/// Representation: little-endian vector of 32-bit limbs with no trailing
/// zero limbs (zero is the empty vector).  The type is a regular value type:
/// copyable, movable, equality-comparable and totally ordered.
class BigNat {
 public:
  /// Constructs zero.
  BigNat() = default;

  /// Constructs from a machine integer.
  explicit BigNat(uint64_t value);

  /// Returns `base^exponent` computed exactly.
  static BigNat Pow(uint32_t base, uint32_t exponent);

  /// True if this value is zero.
  bool IsZero() const { return limbs_.empty(); }

  /// Returns the value as uint64_t if it fits, otherwise UINT64_MAX.
  uint64_t ToUint64Saturating() const;

  /// In-place addition.
  BigNat& operator+=(const BigNat& other);

  /// In-place multiplication by a small factor.
  BigNat& MulSmall(uint32_t factor);

  /// Three-way comparison: negative, zero or positive as *this <=> other.
  int Compare(const BigNat& other) const;

  /// Decimal rendering (for experiment reports and debugging).
  std::string ToString() const;

  friend BigNat operator+(BigNat lhs, const BigNat& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend bool operator==(const BigNat& a, const BigNat& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigNat& a, const BigNat& b) { return !(a == b); }
  friend bool operator<(const BigNat& a, const BigNat& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const BigNat& a, const BigNat& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const BigNat& a, const BigNat& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const BigNat& a, const BigNat& b) {
    return a.Compare(b) >= 0;
  }

 private:
  void Trim();
  // Divides in place by `divisor` (must be nonzero) and returns the
  // remainder; used by ToString.
  uint32_t DivModSmall(uint32_t divisor);

  std::vector<uint32_t> limbs_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_BIGNAT_H_
