#ifndef FRONTIERS_BASE_ATOM_H_
#define FRONTIERS_BASE_ATOM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/vocabulary.h"

namespace frontiers {

/// A fact / atomic formula: a relation symbol applied to terms.
///
/// Atoms are plain value types; whether the terms are constants, variables
/// or Skolem terms is determined by the `Vocabulary`.  The same type serves
/// as database fact (all constants/Skolem terms), as query atom (variables
/// allowed), and as rule body/head atom.
struct Atom {
  PredicateId predicate = kNoPredicate;
  std::vector<TermId> args;

  Atom() = default;
  Atom(PredicateId p, std::vector<TermId> a)
      : predicate(p), args(std::move(a)) {}

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }

  /// Deterministic total order (by predicate then argument ids); used to
  /// canonicalize atom lists for printing and hashing of queries.
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }

  /// True if `t` occurs among the arguments.
  bool ContainsTerm(TermId t) const {
    for (TermId a : args) {
      if (a == t) return true;
    }
    return false;
  }
};

/// Hash functor for Atom (FNV-1a over predicate and argument ids).
struct AtomHash {
  size_t operator()(const Atom& atom) const {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint32_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(atom.predicate);
    for (TermId a : atom.args) mix(a);
    return static_cast<size_t>(h);
  }
};

/// Renders `P(t1,...,tk)`.
std::string AtomToString(const Vocabulary& vocab, const Atom& atom);

/// Renders a list of atoms joined by ", ".
std::string AtomsToString(const Vocabulary& vocab,
                          const std::vector<Atom>& atoms);

}  // namespace frontiers

#endif  // FRONTIERS_BASE_ATOM_H_
