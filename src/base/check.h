#ifndef FRONTIERS_BASE_CHECK_H_
#define FRONTIERS_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace frontiers::internal {

/// Terminates the process after printing file/line, the failed condition and
/// a caller-supplied context message.  Invariant failures are programming
/// errors, not input errors, so this aborts (producing a core / sanitizer
/// report) rather than throwing; genuinely fallible operations return a
/// `Status` instead (see base/status.h).
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "frontiers: fatal: %s:%d: CHECK(%s) failed: %s\n", file,
               line, condition, message.c_str());
  std::fflush(stderr);
  std::abort();
}

/// Terminates the process after printing file/line and a context message.
[[noreturn]] inline void FatalError(const char* file, int line,
                                    const std::string& message) {
  std::fprintf(stderr, "frontiers: fatal: %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace frontiers::internal

/// Checks an engine invariant; on failure prints file/line, the condition
/// text and `msg`, then aborts.  `msg` may be any expression convertible to
/// std::string and is only evaluated on failure.
#define FRONTIERS_CHECK(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::frontiers::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                       \
  } while (false)

/// Unconditional fatal error with file/line context (for unreachable code
/// paths and exhausted lookups whose callers cannot recover).
#define FRONTIERS_FATAL(msg) \
  ::frontiers::internal::FatalError(__FILE__, __LINE__, (msg))

#endif  // FRONTIERS_BASE_CHECK_H_
