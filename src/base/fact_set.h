#ifndef FRONTIERS_BASE_FACT_SET_H_
#define FRONTIERS_BASE_FACT_SET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/atom.h"
#include "base/vocabulary.h"

namespace frontiers {

/// A finite structure / database instance / fact set: a duplicate-free set
/// of atoms with access-path indexes.
///
/// Faithful to Section 2 of the paper, a `FactSet` is *just* a set of facts;
/// its active domain `dom(F)` is derived.  The class maintains, besides the
/// atom store:
///
///  * a per-predicate index (`ByPredicate`), and
///  * a per-(predicate, position, term) index (`ByPredicatePositionTerm`)
///
/// which are the two access paths the CQ matcher and the chase's semi-naive
/// join need.  Atoms are kept in insertion order, so iteration (and hence
/// everything built on top, including chase runs) is deterministic.
class FactSet {
 public:
  FactSet() = default;

  /// Inserts an atom; returns true if it was new.
  bool Insert(const Atom& atom);

  /// Inserts every atom of `other`; returns the number of new atoms.
  size_t InsertAll(const FactSet& other);

  /// Membership test.
  bool Contains(const Atom& atom) const {
    return index_of_.find(atom) != index_of_.end();
  }

  /// Index of `atom` within `atoms()`, if present.
  std::optional<uint32_t> IndexOf(const Atom& atom) const {
    auto it = index_of_.find(atom);
    if (it == index_of_.end()) return std::nullopt;
    return it->second;
  }

  /// Number of atoms.
  size_t size() const { return atoms_.size(); }

  /// True if the set has no atoms.
  bool empty() const { return atoms_.empty(); }

  /// All atoms, in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Indices (into `atoms()`) of atoms with the given predicate.
  const std::vector<uint32_t>& ByPredicate(PredicateId p) const;

  /// Indices of atoms with predicate `p` whose argument at `position`
  /// equals `t`.
  const std::vector<uint32_t>& ByPredicatePositionTerm(PredicateId p,
                                                       uint32_t position,
                                                       TermId t) const;

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<TermId>& Domain() const { return domain_; }

  /// True if `t` occurs in some atom.
  bool ContainsTerm(TermId t) const {
    return domain_set_.find(t) != domain_set_.end();
  }

  /// True if every atom of this set is in `other`.
  bool IsSubsetOf(const FactSet& other) const;

  /// Set equality (order-insensitive).
  bool SetEquals(const FactSet& other) const {
    return size() == other.size() && IsSubsetOf(other);
  }

  /// The substructure induced on `keep`: all atoms whose terms all belong
  /// to `keep` (Definition 36 uses this to carve `M_F` out of a chase).
  FactSet InducedOn(const std::unordered_set<TermId>& keep) const;

  /// Atoms of this set that are not in `other`.
  std::vector<Atom> Difference(const FactSet& other) const;

  /// Degree of `t` in the Gaifman sense restricted to atom incidence: the
  /// number of atoms in which `t` occurs.
  uint32_t AtomDegree(TermId t) const;

  /// Renders `{A(...), B(...)}`.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  struct PosKey {
    PredicateId predicate;
    uint32_t position;
    TermId term;
    friend bool operator==(const PosKey& a, const PosKey& b) {
      return a.predicate == b.predicate && a.position == b.position &&
             a.term == b.term;
    }
  };
  struct PosKeyHash {
    size_t operator()(const PosKey& k) const {
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      mix(k.predicate);
      mix(k.position);
      mix(k.term);
      return static_cast<size_t>(h);
    }
  };

  std::vector<Atom> atoms_;
  std::unordered_map<Atom, uint32_t, AtomHash> index_of_;
  std::unordered_map<PredicateId, std::vector<uint32_t>> by_predicate_;
  std::unordered_map<PosKey, std::vector<uint32_t>, PosKeyHash> by_position_;
  std::vector<TermId> domain_;
  std::unordered_set<TermId> domain_set_;
  std::unordered_map<TermId, uint32_t> atom_degree_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_FACT_SET_H_
