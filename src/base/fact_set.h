#ifndef FRONTIERS_BASE_FACT_SET_H_
#define FRONTIERS_BASE_FACT_SET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/atom.h"
#include "base/columnar.h"
#include "base/vocabulary.h"

namespace frontiers {

/// A finite structure / database instance / fact set: a duplicate-free set
/// of atoms with access-path indexes.
///
/// Faithful to Section 2 of the paper, a `FactSet` is *just* a set of facts;
/// its active domain `dom(F)` is derived.  The class maintains, besides the
/// atom store:
///
///  * a per-predicate index (`ByPredicate`), and
///  * a per-(predicate, position, term) index (`ByPredicatePositionTerm`)
///
/// which are the two access paths the CQ matcher and the chase's semi-naive
/// join need.  Atoms are kept in insertion order, so iteration (and hence
/// everything built on top, including chase runs) is deterministic.
///
/// Storage is columnar: each predicate's argument terms live in
/// struct-of-arrays `ColumnarSegment` columns, and the dedup index keys by
/// atom id into that store (a `RowIdSet` of (hash, id) slots) rather than
/// holding a second copy of every atom.  The row-oriented `atoms()` vector
/// is kept as the iteration-order access path.
class FactSet {
 public:
  FactSet() = default;

  /// Inserts an atom; returns true if it was new.
  bool Insert(const Atom& atom);

  /// Outcome of a row-level insert: the atom's index in `atoms()` (fresh or
  /// pre-existing) and whether this call inserted it.
  struct InsertOutcome {
    uint32_t index;
    bool inserted;
  };

  /// Inserts the row `predicate(terms[0..arity))`; duplicates are detected
  /// without materialising an `Atom`.
  InsertOutcome InsertRow(PredicateId predicate, const TermId* terms,
                          uint32_t arity);

  /// Bulk-inserts every row of `block` in order, as if by repeated
  /// `InsertRow`, pre-sizing the dedup table and segments once for the
  /// whole batch.  Appends one `InsertOutcome` per row to `outcomes` (if
  /// non-null) and returns the number of new atoms.
  ///
  /// `max_size` caps the store: the batch stops (without consuming the
  /// row) at the first *new* row that would push `size()` past the cap;
  /// duplicate rows are still recorded past the cap.  A truncated batch is
  /// visible as `outcomes->size() < block.rows()`.
  size_t InsertBatch(const RowBlock& block,
                     std::vector<InsertOutcome>* outcomes,
                     size_t max_size = SIZE_MAX);

  /// Index of the row `predicate(terms[0..arity))`, if present.
  std::optional<uint32_t> FindRow(PredicateId predicate, const TermId* terms,
                                  uint32_t arity) const;

  /// Inserts every atom of `other`; returns the number of new atoms.
  size_t InsertAll(const FactSet& other);

  /// Membership test.
  bool Contains(const Atom& atom) const { return IndexOf(atom).has_value(); }

  /// Index of `atom` within `atoms()`, if present.
  std::optional<uint32_t> IndexOf(const Atom& atom) const;

  /// Number of atoms.
  size_t size() const { return atoms_.size(); }

  /// True if the set has no atoms.
  bool empty() const { return atoms_.empty(); }

  /// All atoms, in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// The columnar term store for predicate `p`, or nullptr if no atom with
  /// that predicate has been inserted.  Row `LocalRow(i)` of the segment
  /// holds the terms of `atoms()[i]`.
  const ColumnarSegment* Segment(PredicateId p) const {
    auto it = predicates_.find(p);
    if (it == predicates_.end()) return nullptr;
    return &it->second.segment;
  }

  /// Row of `atoms()[index]` within its predicate's segment.
  uint32_t LocalRow(uint32_t index) const { return local_row_[index]; }

  /// Indices (into `atoms()`) of atoms with the given predicate.
  const std::vector<uint32_t>& ByPredicate(PredicateId p) const;

  /// Indices of atoms with predicate `p` whose argument at `position`
  /// equals `t`, in insertion order.  The view stays valid until the next
  /// insert.
  PostingList ByPredicatePositionTerm(PredicateId p, uint32_t position,
                                      TermId t) const;

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<TermId>& Domain() const { return domain_; }

  /// True if `t` occurs in some atom.
  bool ContainsTerm(TermId t) const {
    return t < atom_degree_.size() && atom_degree_[t] > 0;
  }

  /// True if every atom of this set is in `other`.
  bool IsSubsetOf(const FactSet& other) const;

  /// Set equality (order-insensitive).
  bool SetEquals(const FactSet& other) const {
    return size() == other.size() && IsSubsetOf(other);
  }

  /// The substructure induced on `keep`: all atoms whose terms all belong
  /// to `keep` (Definition 36 uses this to carve `M_F` out of a chase).
  FactSet InducedOn(const std::unordered_set<TermId>& keep) const;

  /// Atoms of this set that are not in `other`.
  std::vector<Atom> Difference(const FactSet& other) const;

  /// Degree of `t` in the Gaifman sense restricted to atom incidence: the
  /// number of atoms in which `t` occurs.
  uint32_t AtomDegree(TermId t) const;

  /// Renders `{A(...), B(...)}`.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  // Everything keyed by predicate lives in one struct, so an insert
  // resolves the predicate once and then touches only TermId-keyed
  // per-position maps — no composite (predicate, position, term) keys.
  struct PredicateIndex {
    explicit PredicateIndex(uint32_t arity)
        : segment(arity), by_position(arity) {}
    ColumnarSegment segment;
    std::vector<uint32_t> atom_ids;  // indices into atoms_, in order
    std::vector<PostingMap> by_position;  // one map per argument position
    PostingPool pool;  // backing store for all of by_position's lists
  };

  /// True if `atoms()[id]` is the row `predicate(terms[0..arity))`,
  /// checked against the columnar segment `seg` of `predicate`.
  bool RowMatches(uint32_t id, PredicateId predicate, const TermId* terms,
                  const ColumnarSegment& seg) const {
    return atoms_[id].predicate == predicate &&
           seg.arity() == atoms_[id].args.size() &&
           seg.RowEquals(local_row_[id], terms);
  }

  /// Shared tail of `Insert`/`InsertRow`/`InsertBatch`: index maintenance
  /// for the freshly appended atom at `index`.
  void IndexNewAtom(uint32_t index, PredicateIndex& pidx);

  std::vector<Atom> atoms_;
  std::vector<uint32_t> local_row_;  // parallel to atoms_
  std::unordered_map<PredicateId, PredicateIndex> predicates_;
  RowIdSet dedup_;
  std::vector<TermId> domain_;
  // Degree indexed directly by TermId (term ids are dense vocabulary
  // indices); doubles as domain membership — a term is in the active
  // domain iff its degree is non-zero (degrees are never decremented).
  std::vector<uint32_t> atom_degree_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_FACT_SET_H_
