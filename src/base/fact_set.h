#ifndef FRONTIERS_BASE_FACT_SET_H_
#define FRONTIERS_BASE_FACT_SET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/atom.h"
#include "base/columnar.h"
#include "base/vocabulary.h"

namespace frontiers {

class WorkerPool;  // base/worker_pool.h

/// A finite structure / database instance / fact set: a duplicate-free set
/// of atoms with access-path indexes.
///
/// Faithful to Section 2 of the paper, a `FactSet` is *just* a set of facts;
/// its active domain `dom(F)` is derived.  The class maintains, besides the
/// atom store:
///
///  * a per-predicate index (`ByPredicate`), and
///  * a per-(predicate, position, term) index (`ByPredicatePositionTerm`)
///
/// which are the two access paths the CQ matcher and the chase's semi-naive
/// join need.  Atoms are kept in insertion order, so iteration (and hence
/// everything built on top, including chase runs) is deterministic.
///
/// Storage is columnar: each predicate's argument terms live in
/// struct-of-arrays `ColumnarSegment` columns, and the dedup index keys by
/// atom id into that store rather than holding a second copy of every atom.
/// The row-oriented `atoms()` vector is kept as the iteration-order access
/// path.
///
/// **Sharding & concurrency contract.**  The dedup index is partitioned
/// into `shard_count()` shards keyed by (predicate, first ground term), so
/// a high-fanout predicate's rows spread across every shard while duplicate
/// rows always land in the same shard (duplicates agree on both keys).
/// Each shard owns its partition's open-addressed table and a mutex;
/// `InsertBatchParallel` commits one block with one task per shard (dedup)
/// plus one task per (predicate, position) pair (columns + postings), all
/// writing disjoint pre-assigned slots.  *Reads take no locks anywhere*:
/// between commit phases the segments, postings, and dedup tables are
/// epoch-stable (nothing mutates them), which is what lets the chase's
/// match workers scan the store freely.  Observable state — atom order,
/// segment rows, posting-list order, domain order — never depends on the
/// shard count or the worker count; shards partition *work*, not
/// semantics.
class FactSet {
 public:
  /// Default dedup shard count (power of two).  Small enough that tiny
  /// instances don't pay table overhead, large enough that an 8-thread
  /// commit has a shard per worker.
  static constexpr uint32_t kDefaultShards = 8;

  FactSet() : FactSet(kDefaultShards) {}

  /// Constructs a store with `shard_count` dedup shards (rounded up to a
  /// power of two, clamped to [1, 256]).  The shard count is a pure
  /// performance knob: every observable behaviour is identical across
  /// shard counts (asserted by tests/shard_test.cc).
  explicit FactSet(uint32_t shard_count);

  // Copies duplicate the data and get fresh (unlocked) shard mutexes; a
  // copy made while another thread commits into the source is a data race,
  // exactly as for any other container.
  FactSet(const FactSet& other);
  FactSet& operator=(const FactSet& other);
  FactSet(FactSet&&) = default;
  FactSet& operator=(FactSet&&) = default;

  /// Number of dedup shards (always a power of two).
  uint32_t shard_count() const { return shard_mask_ + 1; }

  /// Inserts an atom; returns true if it was new.
  bool Insert(const Atom& atom);

  /// Outcome of a row-level insert: the atom's index in `atoms()` (fresh or
  /// pre-existing) and whether this call inserted it.
  struct InsertOutcome {
    uint32_t index;
    bool inserted;
  };

  /// Inserts the row `predicate(terms[0..arity))`; duplicates are detected
  /// without materialising an `Atom`.
  InsertOutcome InsertRow(PredicateId predicate, const TermId* terms,
                          uint32_t arity);

  /// Bulk-inserts every row of `block` in order, as if by repeated
  /// `InsertRow`, pre-sizing the dedup table and segments once for the
  /// whole batch.  Appends one `InsertOutcome` per row to `outcomes` (if
  /// non-null) and returns the number of new atoms.
  ///
  /// `max_size` caps the store: the batch stops (without consuming the
  /// row) at the first *new* row that would push `size()` past the cap;
  /// duplicate rows are still recorded past the cap.  A truncated batch is
  /// visible as `outcomes->size() < block.rows()`.
  size_t InsertBatch(const RowBlock& block,
                     std::vector<InsertOutcome>* outcomes,
                     size_t max_size = SIZE_MAX);

  /// Sub-phase timings of one batch commit, for the chase's commit
  /// attribution (expand / dedup / index).
  struct BatchTimings {
    double dedup_seconds = 0.0;  ///< hash + shard dedup probes + id assignment
    double index_seconds = 0.0;  ///< column fill, postings, atoms, domain
  };

  /// Per-batch shard occupancy and contention, for the obs layer's
  /// metrics and the chase's parallelism accounting.  All timing fields
  /// are pure observation: they are filled from per-task clock reads into
  /// disjoint scratch slots and never influence the committed state.
  struct BatchStats {
    uint32_t shards_touched = 0;   ///< shards that saw at least one row
    uint64_t max_shard_rows = 0;   ///< rows routed to the busiest shard
    uint64_t new_atoms = 0;        ///< rows that were actually new
    uint64_t rows = 0;             ///< rows in the batch
    /// Shard-mutex contention summed over the batch's dedup + fix-up
    /// tasks: time spent blocked acquiring vs holding a shard mutex.
    uint64_t shard_wait_ns = 0;
    uint64_t shard_hold_ns = 0;
    uint64_t max_shard_wait_ns = 0;  ///< worst single shard's wait
    /// One parallel region of the batch pipeline: region wall time, total
    /// task work inside it, and the longest single task (the region's
    /// critical path — with perfect scheduling the region can't finish
    /// faster than this).
    struct ParallelRegion {
      double wall_seconds = 0.0;
      double work_seconds = 0.0;
      double longest_seconds = 0.0;
    };
    ParallelRegion hash;   ///< Phase A0: per-chunk hashing + routing.
    ParallelRegion dedup;  ///< Phase A: per-shard dedup (work = lock hold).
    ParallelRegion index;  ///< Phase B: index-fill tasks.
  };

  /// The pipelined twin of `InsertBatch`: byte-identical outcomes and
  /// store state, computed with one dedup task per shard and one index
  /// task per (predicate, position), executed on `pool` (or inline when
  /// `pool` is null — same code path, still phase-timed).
  ///
  /// Determinism: new rows keep their block order — global atom ids are
  /// assigned by a serial pass over the block after the parallel dedup
  /// phase, and every index task writes pre-assigned disjoint slots — so
  /// the resulting store is byte-identical to `InsertBatch` at every pool
  /// size and shard count.
  ///
  /// A batch that could truncate against `max_size` falls back to the
  /// serial path (truncation is insert-by-insert stateful and terminal for
  /// the caller anyway); its whole duration is attributed to
  /// `timings->dedup_seconds`.
  ///
  /// Failpoints: `fact_set.insert_batch` (admission, like the serial
  /// path) and `fact_set.shard_commit` (fired inside a shard's dedup
  /// task).  On a shard fault the batch aborts whole: provisional dedup
  /// entries are rolled back shard by shard, no outcome is appended, 0 is
  /// returned, and the store is byte-identical to its pre-batch state.
  size_t InsertBatchParallel(const RowBlock& block,
                             std::vector<InsertOutcome>* outcomes,
                             WorkerPool* pool, size_t max_size = SIZE_MAX,
                             BatchTimings* timings = nullptr,
                             BatchStats* stats = nullptr);

  /// Index of the row `predicate(terms[0..arity))`, if present.
  std::optional<uint32_t> FindRow(PredicateId predicate, const TermId* terms,
                                  uint32_t arity) const;

  /// Inserts every atom of `other`; returns the number of new atoms.
  size_t InsertAll(const FactSet& other);

  /// Membership test.
  bool Contains(const Atom& atom) const { return IndexOf(atom).has_value(); }

  /// Index of `atom` within `atoms()`, if present.
  std::optional<uint32_t> IndexOf(const Atom& atom) const;

  /// Number of atoms.
  size_t size() const { return atoms_.size(); }

  /// True if the set has no atoms.
  bool empty() const { return atoms_.empty(); }

  /// All atoms, in insertion order.
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// The columnar term store for predicate `p`, or nullptr if no atom with
  /// that predicate has been inserted.  Row `LocalRow(i)` of the segment
  /// holds the terms of `atoms()[i]`.
  const ColumnarSegment* Segment(PredicateId p) const {
    auto it = predicates_.find(p);
    if (it == predicates_.end()) return nullptr;
    return &it->second.segment;
  }

  /// Row of `atoms()[index]` within its predicate's segment.
  uint32_t LocalRow(uint32_t index) const { return local_row_[index]; }

  /// Indices (into `atoms()`) of atoms with the given predicate.
  const std::vector<uint32_t>& ByPredicate(PredicateId p) const;

  /// Indices of atoms with predicate `p` whose argument at `position`
  /// equals `t`, in insertion order.  The view stays valid until the next
  /// insert.
  PostingList ByPredicatePositionTerm(PredicateId p, uint32_t position,
                                      TermId t) const;

  /// The active domain: every term occurring in some atom, in first-seen
  /// order.
  const std::vector<TermId>& Domain() const { return domain_; }

  /// True if `t` occurs in some atom.
  bool ContainsTerm(TermId t) const {
    return t < atom_degree_.size() && atom_degree_[t] > 0;
  }

  /// True if every atom of this set is in `other`.
  bool IsSubsetOf(const FactSet& other) const;

  /// Set equality (order-insensitive).
  bool SetEquals(const FactSet& other) const {
    return size() == other.size() && IsSubsetOf(other);
  }

  /// The substructure induced on `keep`: all atoms whose terms all belong
  /// to `keep` (Definition 36 uses this to carve `M_F` out of a chase).
  FactSet InducedOn(const std::unordered_set<TermId>& keep) const;

  /// Atoms of this set that are not in `other`.
  std::vector<Atom> Difference(const FactSet& other) const;

  /// Degree of `t` in the Gaifman sense restricted to atom incidence: the
  /// number of atoms in which `t` occurs.
  uint32_t AtomDegree(TermId t) const;

  /// Renders `{A(...), B(...)}`.
  std::string ToString(const Vocabulary& vocab) const;

  /// Adds this store's heap footprint into `totals`, component by
  /// component (columns, postings, dedup, fact_meta, scratch), computed
  /// from the store's own bookkeeping in O(predicates × arity + shards).
  /// Deterministic in capacity mode for a fixed insert sequence; see
  /// MemAccounting for the capacity/content contract.
  void AccountHeap(MemTotals& totals, MemAccounting mode) const;

  /// Appends per-predicate attribution rows (columns, postings — in
  /// component-major, predicate-id order) plus the global dedup and
  /// fact_meta rows to `ledger`.  Scratch is deliberately absent: it is
  /// thread-dependent and only ever reported as a diagnostic total.
  void AccountLedger(MemLedger& ledger, MemAccounting mode) const;

 private:
  // Everything keyed by predicate lives in one struct, so an insert
  // resolves the predicate once and then touches only TermId-keyed
  // per-position maps — no composite (predicate, position, term) keys.
  //
  // Each argument position owns its posting map *and* its chunk pool, so
  // the parallel commit's per-(predicate, position) index tasks never
  // share an allocator.
  struct PositionIndex {
    PostingMap map;
    PostingPool pool;
  };
  struct PredicateIndex {
    explicit PredicateIndex(uint32_t arity)
        : segment(arity), by_position(arity) {}
    ColumnarSegment segment;
    std::vector<uint32_t> atom_ids;  // indices into atoms_, in order
    std::vector<PositionIndex> by_position;  // one per argument position
  };

  // One dedup shard: the (hash, atom id) table for rows whose
  // (predicate, first ground term) hashes here, plus the mutex the
  // parallel commit's shard tasks hold while mutating it.
  struct Shard {
    RowIdSet dedup;
  };

  // Provisional dedup ids during a parallel batch: `kBatchRowBit | row`
  // marks "row `row` of the in-flight block", promoted to the final
  // global atom id by the fix-up task once ids are assigned.  Real atom
  // ids must stay below the bit (checked at batch admission).
  static constexpr uint32_t kBatchRowBit = 0x80000000u;

  // Reusable working arrays for `InsertBatchParallel`.  The chase commits
  // one batch per round, and a tiny round must not pay a dozen heap
  // allocations of per-batch scratch — so the arrays keep their capacity
  // across batches.  Pure scratch: dead between calls, never copied (a
  // copy starts with empty scratch).
  struct BatchScratch {
    std::vector<uint64_t> hashes;          // per row
    std::vector<uint32_t> shard_of;        // per row
    std::vector<PredicateIndex*> pidx_of;  // per row
    std::vector<uint32_t> found;           // per row: resident id or marker
    std::vector<uint32_t> row_global;      // per row: assigned global id
    std::vector<uint32_t> row_local;       // per row: assigned segment row
    std::vector<uint32_t> plan_of_row;     // per row: index into plans
    std::vector<std::vector<uint32_t>> shard_rows;  // per shard, block order
    std::vector<std::vector<uint32_t>> shard_new;   // per shard: new rows
    std::vector<uint32_t> active_shards;
    std::vector<uint32_t> new_rows;  // block order
    // Per-predicate plan: a predicate's new rows occupy the next slots of
    // its segment in block order.  `plan_rows` is the CSR payload — new
    // rows grouped by plan, block order within each group.
    struct PredPlan {
      PredicateId predicate;
      PredicateIndex* pidx;
      uint32_t old_rows;  // segment rows before this batch
      uint32_t begin;     // into plan_rows
      uint32_t count;
    };
    std::vector<PredPlan> plans;
    std::vector<uint32_t> plan_rows;
    std::unordered_map<PredicateId, uint32_t> plan_of;  // cleared per batch
    // Phase-B work items (kinds defined in fact_set.cc).
    struct IndexTask {
      uint8_t kind;
      uint32_t a;
      uint32_t b;
    };
    std::vector<IndexTask> tasks;
    // Per-task timing slots (BatchStats).  Disjoint by construction — each
    // task writes exactly its own index — so recording them is race-free
    // and cannot perturb results.
    std::vector<uint64_t> task_busy_ns;   // per task of the current region
    std::vector<uint64_t> shard_wait_ns;  // per shard, dedup + fix-up
    std::vector<uint64_t> shard_hold_ns;  // per shard, dedup + fix-up
  };

  /// Shard routing: predicate + first ground term (kNoTerm for arity 0).
  /// Duplicate rows agree on both, so dedup stays shard-local.
  uint32_t DedupShardOf(PredicateId predicate, const TermId* terms,
                        uint32_t arity) const {
    const TermId t0 = arity > 0 ? terms[0] : kNoTerm;
    return static_cast<uint32_t>(HashIdSpan(predicate, &t0, 1)) & shard_mask_;
  }

  /// True if `atoms()[id]` is the row `predicate(terms[0..arity))`,
  /// checked against the columnar segment `seg` of `predicate`.
  bool RowMatches(uint32_t id, PredicateId predicate, const TermId* terms,
                  const ColumnarSegment& seg) const {
    return atoms_[id].predicate == predicate &&
           seg.arity() == atoms_[id].args.size() &&
           seg.RowEquals(local_row_[id], terms);
  }

  /// Shared tail of `Insert`/`InsertRow`/`InsertBatch`: index maintenance
  /// for the freshly appended atom at `index`.
  void IndexNewAtom(uint32_t index, PredicateIndex& pidx);

  // Accounting helpers shared by AccountHeap and AccountLedger, so the
  // per-predicate ledger rows sum to exactly the component totals.
  uint64_t PredColumnsBytes(const PredicateIndex& pidx,
                            MemAccounting mode) const;
  uint64_t PredPostingsBytes(const PredicateIndex& pidx,
                             MemAccounting mode) const;
  uint64_t DedupHeapBytes(MemAccounting mode) const;
  uint64_t MetaHeapBytes(MemAccounting mode) const;
  uint64_t ScratchHeapBytes() const;

  /// Records `t` at position `pos` of the freshly appended `atom` into the
  /// degree/domain structures (first-occurrence-in-atom discipline).
  void CountTermOccurrence(const TermId* args, uint32_t pos);

  void InitShards(uint32_t shard_count);

  std::vector<Atom> atoms_;
  std::vector<uint32_t> local_row_;  // parallel to atoms_
  std::unordered_map<PredicateId, PredicateIndex> predicates_;
  std::vector<Shard> shards_;
  // Parallel to shards_; unique_ptr keeps FactSet movable and lets copies
  // start with fresh mutexes.
  std::vector<std::unique_ptr<std::mutex>> shard_mutexes_;
  uint32_t shard_mask_ = 0;
  BatchScratch scratch_;  // InsertBatchParallel working arrays; not copied
  std::vector<TermId> domain_;
  // Degree indexed directly by TermId (term ids are dense vocabulary
  // indices); doubles as domain membership — a term is in the active
  // domain iff its degree is non-zero (degrees are never decremented).
  std::vector<uint32_t> atom_degree_;
};

}  // namespace frontiers

#endif  // FRONTIERS_BASE_FACT_SET_H_
