#ifndef FRONTIERS_CATALOG_THEORIES_H_
#define FRONTIERS_CATALOG_THEORIES_H_

#include <cstdint>

#include "base/vocabulary.h"
#include "tgd/tgd.h"

namespace frontiers {

/// Every named theory of the paper, built against a shared `Vocabulary`.
/// Rule labels follow the paper's names ((loop), (pins), (grid), ...) so
/// that strategies (catalog/strategies.h) and reports can refer to them.

/// `T_a` of Example 1:
///   Human(y) -> exists z Mother(y,z)
///   Mother(x,y) -> Human(y)
Theory MotherTheory(Vocabulary& vocab);

/// `T_p` of Exercise 12 (BDD but not Core-Terminating):
///   E(x,y) -> exists z E(y,z)
Theory ForwardPathTheory(Vocabulary& vocab);

/// Exercise 23 (Core-Terminating but not All-Instances-Terminating):
///   E(x,y) -> exists z E(y,z)
///   E(x,x'), E(x',x'') -> E(x',x')
Theory Exercise23Theory(Vocabulary& vocab);

/// Example 28 truncated to K levels (the infinite-signature counterexample
/// to the FUS/FES conjecture; only finitely many levels can meet any given
/// uniform bound candidate):
///   E_i(x,y) -> exists z E_{i-1}(y,z)     for 1 <= i <= K
Theory TruncatedInfiniteTheory(Vocabulary& vocab, uint32_t levels);

/// Example 39 (sticky, BDD, *not* local):
///   E4(x,y,y',t), R(x,t') -> exists y'' E4(x,y',y'',t')   (E4 has arity 4)
Theory StickyExample39Theory(Vocabulary& vocab);

/// Example 41 (bounded-degree local but *not* BDD):
///   E3(x,y,z), R(x,z) -> R(y,z)
Theory Example41Theory(Vocabulary& vocab);

/// `T_c` of Example 42 (BDD but *not* bd-local):
///   E(x,y) -> exists x',y' R(x,y,x',y')
///   R(x,y,x',y'), E(y,z) -> exists z' R(y,z,y',z')
Theory TcTheory(Vocabulary& vocab);

/// `T_d` of Definition 45 (BDD, not distancing; Sections 10-11), in the
/// paper's multi-head form with one divergence: the (pins) rule
/// `true -> exists z,z' R(x,z), G(x,z')` is split into two rules
/// (pins_r) `true -> exists z R(x,z)` and (pins_g) `true -> exists z' G(x,z')`.
/// The two existentials of (pins) are independent, so under the
/// semi-oblivious chase the split produces an isomorphic structure, and
/// BDD/locality/distancing status is unaffected; the split lets chase
/// strategies control red and green pins separately.
/// Rules, labelled: (loop) true -> exists x R(x,x), G(x,x);
/// (pins_r), (pins_g); (grid) R(x,x'), G(x,u), G(u,u')
///                               -> exists z R(u',z), G(x',z).
Theory TdTheory(Vocabulary& vocab);

/// The single-head encoding of `T_d` sketched in footnote 31: auxiliary
/// predicates replace the multi-head rules, with Datalog projections onto
/// R and G.  Used to drive the general piece-rewriting engine (which
/// requires single-head rules) on T_d; the chase's R/G reduct agrees with
/// TdTheory's (tested).
Theory TdSingleHeadTheory(Vocabulary& vocab);

/// `T_d^K` of Section 12, over signature {I_K,...,I_1}:
///   (loop)    true -> exists x I_K(x,x), ..., I_1(x,x)
///   (pins_k)  true -> exists z I_k(x,z)                     1 <= k <= K
///   (grid_i)  I_{i+1}(x,x'), I_i(x,u), I_i(u,u')
///                -> exists z I_{i+1}(u',z), I_i(x',z)       1 <= i < K
/// For K = 2 this is exactly T_d with I_2 = R and I_1 = G.
Theory TdKTheory(Vocabulary& vocab, uint32_t k);

/// Example 66 (Section 13; the theory defeating the naive Crucial Lemma):
///   E(x,y), R(z,y) -> exists v E(y,v)
///   E(x,y), P(z) -> R(z,y)
Theory Example66Theory(Vocabulary& vocab);

/// The name of the k-th level predicate of TdKTheory ("I1", ..., "IK").
std::string TdKPredicateName(uint32_t level);

}  // namespace frontiers

#endif  // FRONTIERS_CATALOG_THEORIES_H_
