#ifndef FRONTIERS_CATALOG_STRATEGIES_H_
#define FRONTIERS_CATALOG_STRATEGIES_H_

#include <cstdint>
#include <functional>
#include <string_view>

#include "base/fact_set.h"
#include "base/status.h"
#include "base/vocabulary.h"
#include "tgd/substitution.h"
#include "tgd/tgd.h"

namespace frontiers {

/// A chase application filter (see ChaseOptions::filter).
using ChaseFilter = std::function<bool(size_t rule_index,
                                       const Substitution& sigma,
                                       const FactSet& stage)>;

/// Index of the rule named `name` in `theory`, or an error status if no
/// such rule exists.  The genuinely fallible half of the strategy builders:
/// callers that treat a miss as a programming error wrap the result in
/// FRONTIERS_CHECK, callers probing user-supplied theories branch on ok().
Result<size_t> FindRuleIndex(const Theory& theory, std::string_view name);

/// Predicate id of `name` in `vocab`, or an error status if it was never
/// interned (e.g. a strategy built before its theory).
Result<PredicateId> FindPredicateOrError(const Vocabulary& vocab,
                                         std::string_view name);

/// Witness-search strategy for `T_d` (Sections 10-11).
///
/// The full chase of T_d explodes: the (pins) rules give *every* term two
/// fresh successors per round, so the structure doubles each round, while
/// the grid witness of Figure 1 only ever uses
///   * (grid) applications, and
///   * red pins on terms with no incoming green edge (the grid's "column"
///     terms: the start of each row's red chain).
/// This strategy therefore
///   * skips (loop)           - only relevant for Boolean queries,
///   * skips (pins_g)         - green pins never feed the grid,
///   * allows (pins_r) on a term only if it has no incoming G edge,
///   * allows (grid) always.
/// The filtered chase is a *subset* of the real chase, so any query match
/// found in it is correct ("yes" answers are sound); tests validate against
/// the unfiltered chase on small instances that "no" answers agree too for
/// the phi_R^n family.
ChaseFilter TdWitnessStrategy(const Vocabulary& vocab, const Theory& td);

/// The analogous strategy for `T_d^K` (Section 12): skips (loop) and
/// (pins_1), and allows (pins_k) on a term `t` only if
///   * `t` has no incoming I_j edge for any j < k (grid columns at level k
///     have incoming I_k only), or
///   * `t` is a constant of the input instance with an outgoing I_{k-1}
///     edge - the base of a level-(k-1) rail, where the level-k grid's
///     column chain must start (the composed witnesses of Theorem 6 anchor
///     level-k structure at the *end* of the level-1 path, which has
///     incoming I_1 and so fails the first clause).
/// As with TdWitnessStrategy, the filtered chase under-approximates the
/// real one, so "yes" answers are sound.
ChaseFilter TdKWitnessStrategy(const Vocabulary& vocab, const Theory& tdk,
                               uint32_t k, const FactSet& db);

}  // namespace frontiers

#endif  // FRONTIERS_CATALOG_STRATEGIES_H_
