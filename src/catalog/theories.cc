#include "catalog/theories.h"

#include <string>

#include "base/check.h"
#include "tgd/parser.h"

namespace frontiers {

namespace {

// All catalog theories are written in the parser DSL; a parse failure here
// is a programming error.
Theory MustParse(Vocabulary& vocab, const std::string& text,
                 const std::string& name) {
  Result<Theory> theory = ParseTheory(vocab, text, name);
  FRONTIERS_CHECK(theory.ok(), "catalog theory '" + name +
                                   "' failed to parse: " + theory.message());
  return std::move(theory).value();
}

}  // namespace

Theory MotherTheory(Vocabulary& vocab) {
  return MustParse(vocab,
                   R"(
    mother: Human(y) -> exists z . Mother(y,z)
    human: Mother(x,y) -> Human(y)
  )",
                   "T_a");
}

Theory ForwardPathTheory(Vocabulary& vocab) {
  return MustParse(vocab, "step: E(x,y) -> exists z . E(y,z)", "T_p");
}

Theory Exercise23Theory(Vocabulary& vocab) {
  return MustParse(vocab,
                   R"(
    step: E(x,y) -> exists z . E(y,z)
    loopback: E(x,x1), E(x1,x2) -> E(x1,x1)
  )",
                   "Ex23");
}

Theory TruncatedInfiniteTheory(Vocabulary& vocab, uint32_t levels) {
  std::string text;
  for (uint32_t i = 1; i <= levels; ++i) {
    text += "down" + std::to_string(i) + ": E" + std::to_string(i) +
            "(x,y) -> exists z . E" + std::to_string(i - 1) + "(y,z)\n";
  }
  return MustParse(vocab, text, "Ex28_K" + std::to_string(levels));
}

Theory StickyExample39Theory(Vocabulary& vocab) {
  return MustParse(
      vocab, "see: E4(x,y,y1,t), R(x,t1) -> exists y2 . E4(x,y1,y2,t1)",
      "Ex39");
}

Theory Example41Theory(Vocabulary& vocab) {
  return MustParse(vocab, "pass: E3(x,y,z), R(x,z) -> R(y,z)", "Ex41");
}

Theory TcTheory(Vocabulary& vocab) {
  return MustParse(vocab,
                   R"(
    start: E(x,y) -> exists x1,y1 . R4(x,y,x1,y1)
    walk: R4(x,y,x1,y1), E(y,z) -> exists z1 . R4(y,z,y1,z1)
  )",
                   "T_c");
}

Theory TdTheory(Vocabulary& vocab) {
  return MustParse(vocab,
                   R"(
    loop: true -> exists x . R(x,x), G(x,x)
    pins_r: true -> exists z . R(x,z)
    pins_g: true -> exists z1 . G(x,z1)
    grid: R(x,x1), G(x,u), G(u,u1) -> exists z . R(u1,z), G(x1,z)
  )",
                   "T_d");
}

Theory TdSingleHeadTheory(Vocabulary& vocab) {
  // Footnote 31 encoding: LoopPt marks the (loop) witness, Grid3 carries
  // the shared existential of (grid); Datalog rules project onto R and G.
  return MustParse(vocab,
                   R"(
    loop: true -> exists x . LoopPt(x)
    loop_r: LoopPt(x) -> R(x,x)
    loop_g: LoopPt(x) -> G(x,x)
    pins_r: true -> exists z . R(x,z)
    pins_g: true -> exists z1 . G(x,z1)
    grid: R(x,x1), G(x,u), G(u,u1) -> exists z . Grid3(u1,x1,z)
    grid_r: Grid3(u1,x1,z) -> R(u1,z)
    grid_g: Grid3(u1,x1,z) -> G(x1,z)
  )",
                   "T_d_single_head");
}

std::string TdKPredicateName(uint32_t level) {
  return "I" + std::to_string(level);
}

Theory TdKTheory(Vocabulary& vocab, uint32_t k) {
  std::string text;
  // (loop): one multi-head rule putting a self-loop of every colour on a
  // single invented point.
  text += "loop: true -> exists x . ";
  for (uint32_t i = k; i >= 1; --i) {
    text += TdKPredicateName(i) + "(x,x)";
    text += (i == 1) ? "\n" : ", ";
  }
  // (pins_k) rules.
  for (uint32_t i = 1; i <= k; ++i) {
    text += "pins_" + std::to_string(i) + ": true -> exists z . " +
            TdKPredicateName(i) + "(x,z)\n";
  }
  // (grid_i) rules.
  for (uint32_t i = 1; i + 1 <= k; ++i) {
    const std::string hi = TdKPredicateName(i + 1);
    const std::string lo = TdKPredicateName(i);
    text += "grid_" + std::to_string(i) + ": " + hi + "(x,x1), " + lo +
            "(x,u), " + lo + "(u,u1) -> exists z . " + hi + "(u1,z), " + lo +
            "(x1,z)\n";
  }
  return MustParse(vocab, text, "T_d^" + std::to_string(k));
}

Theory Example66Theory(Vocabulary& vocab) {
  return MustParse(vocab,
                   R"(
    extend: E(x,y), R(z,y) -> exists v . E(y,v)
    paint: E(x,y), P(z) -> R(z,y)
  )",
                   "Ex66");
}

}  // namespace frontiers
