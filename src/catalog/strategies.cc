#include "catalog/strategies.h"

#include <string>
#include <vector>

#include "base/check.h"
#include "catalog/theories.h"

namespace frontiers {

namespace {

// Catalog strategies are built against catalog theories, so a missing rule
// or predicate is a programming error; the Result-returning lookups below
// stay available to callers probing user-supplied theories.
size_t RuleIndexByName(const Theory& theory, const std::string& name) {
  Result<size_t> index = FindRuleIndex(theory, name);
  FRONTIERS_CHECK(index.ok(), index.message());
  return index.value();
}

PredicateId PredicateByName(const Vocabulary& vocab, const std::string& name) {
  Result<PredicateId> pred = FindPredicateOrError(vocab, name);
  FRONTIERS_CHECK(pred.ok(), pred.message());
  return pred.value();
}

bool HasIncomingEdge(const FactSet& stage, PredicateId pred, TermId t) {
  return !stage.ByPredicatePositionTerm(pred, 1, t).empty();
}

}  // namespace

Result<size_t> FindRuleIndex(const Theory& theory, std::string_view name) {
  for (size_t i = 0; i < theory.rules.size(); ++i) {
    if (theory.rules[i].name == name) return i;
  }
  return Status::Error("theory '" + theory.name + "' has no rule named '" +
                       std::string(name) + "'");
}

Result<PredicateId> FindPredicateOrError(const Vocabulary& vocab,
                                         std::string_view name) {
  std::optional<PredicateId> pred = vocab.FindPredicate(name);
  if (!pred.has_value()) {
    return Status::Error("vocabulary has no predicate named '" +
                         std::string(name) + "'");
  }
  return *pred;
}

ChaseFilter TdWitnessStrategy(const Vocabulary& vocab, const Theory& td) {
  const size_t loop = RuleIndexByName(td, "loop");
  const size_t pins_r = RuleIndexByName(td, "pins_r");
  const size_t pins_g = RuleIndexByName(td, "pins_g");
  const PredicateId g = PredicateByName(vocab, "G");
  const TermId pins_r_var = td.rules[pins_r].domain_vars.at(0);
  return [loop, pins_r, pins_g, g, pins_r_var](size_t rule_index,
                                               const Substitution& sigma,
                                               const FactSet& stage) {
    if (rule_index == loop || rule_index == pins_g) return false;
    if (rule_index == pins_r) {
      TermId t = Apply(sigma, pins_r_var);
      return !HasIncomingEdge(stage, g, t);
    }
    return true;
  };
}

ChaseFilter TdKWitnessStrategy(const Vocabulary& vocab, const Theory& tdk,
                               uint32_t k, const FactSet& db) {
  const size_t loop = RuleIndexByName(tdk, "loop");
  struct PinsRule {
    size_t index;
    uint32_t level;
    TermId domain_var;
  };
  std::vector<PinsRule> pins;
  for (uint32_t level = 1; level <= k; ++level) {
    size_t index = RuleIndexByName(tdk, "pins_" + std::to_string(level));
    pins.push_back({index, level, tdk.rules[index].domain_vars.at(0)});
  }
  std::vector<PredicateId> level_pred(k + 1, kNoPredicate);
  for (uint32_t level = 1; level <= k; ++level) {
    level_pred[level] = PredicateByName(vocab, TdKPredicateName(level));
  }
  std::unordered_set<TermId> input_terms(db.Domain().begin(),
                                         db.Domain().end());
  return [loop, pins, level_pred, input_terms](size_t rule_index,
                                               const Substitution& sigma,
                                               const FactSet& stage) {
    if (rule_index == loop) return false;
    for (const PinsRule& rule : pins) {
      if (rule_index != rule.index) continue;
      if (rule.level == 1) return false;
      TermId t = Apply(sigma, rule.domain_var);
      // Column terms of the level-k grid only ever have incoming I_k
      // edges; allowing any other incoming colour admits the "junk grid"
      // cascade (pins chains on every invented term), which blows the
      // chase up without contributing witnesses.
      bool only_same_level_incoming = true;
      for (uint32_t j = 1; j < level_pred.size(); ++j) {
        if (j == rule.level) continue;
        if (level_pred[j] != kNoPredicate &&
            HasIncomingEdge(stage, level_pred[j], t)) {
          only_same_level_incoming = false;
          break;
        }
      }
      if (only_same_level_incoming) return true;
      // Rail-base clause: input constants with an outgoing I_{k-1} edge.
      return input_terms.count(t) > 0 &&
             !stage.ByPredicatePositionTerm(level_pred[rule.level - 1], 0, t)
                  .empty();
    }
    return true;  // grid rules always fire
  };
}

}  // namespace frontiers
