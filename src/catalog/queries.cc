#include "catalog/queries.h"

#include <vector>

#include "base/atom.h"
#include "catalog/theories.h"

namespace frontiers {

ConjunctiveQuery PathQuery(Vocabulary& vocab, const std::string& predicate,
                           uint32_t length) {
  PredicateId pred = vocab.AddPredicate(predicate, 2);
  ConjunctiveQuery query;
  std::vector<TermId> vars;
  vars.reserve(length + 1);
  for (uint32_t i = 0; i <= length; ++i) {
    vars.push_back(vocab.FreshVariable("p"));
  }
  for (uint32_t i = 0; i < length; ++i) {
    query.atoms.push_back(Atom(pred, {vars[i], vars[i + 1]}));
  }
  query.answer_vars = {vars.front(), vars.back()};
  return query;
}

namespace {

// Appends R^n(from, to) through fresh intermediate variables and returns
// the final variable `to`.
TermId AppendChain(Vocabulary& vocab, PredicateId pred, TermId from,
                   uint32_t length, ConjunctiveQuery& query) {
  TermId current = from;
  for (uint32_t i = 0; i < length; ++i) {
    TermId next = vocab.FreshVariable("c");
    query.atoms.push_back(Atom(pred, {current, next}));
    current = next;
  }
  return current;
}

ConjunctiveQuery PhiTop(Vocabulary& vocab, PredicateId top, PredicateId below,
                        uint32_t n) {
  ConjunctiveQuery query;
  TermId x = vocab.FreshVariable("x");
  TermId y = vocab.FreshVariable("y");
  TermId x_top = AppendChain(vocab, top, x, n, query);
  TermId y_top = AppendChain(vocab, top, y, n, query);
  query.atoms.push_back(Atom(below, {x_top, y_top}));
  query.answer_vars = {x, y};
  return query;
}

}  // namespace

ConjunctiveQuery PhiRn(Vocabulary& vocab, uint32_t n) {
  PredicateId r = vocab.AddPredicate("R", 2);
  PredicateId g = vocab.AddPredicate("G", 2);
  return PhiTop(vocab, r, g, n);
}

ConjunctiveQuery PhiTopKn(Vocabulary& vocab, uint32_t k, uint32_t n) {
  PredicateId top = vocab.AddPredicate(TdKPredicateName(k), 2);
  PredicateId below = vocab.AddPredicate(TdKPredicateName(k - 1), 2);
  return PhiTop(vocab, top, below, n);
}

ConjunctiveQuery TdKComposedQuery(Vocabulary& vocab, uint32_t n) {
  PredicateId i1 = vocab.AddPredicate(TdKPredicateName(1), 2);
  PredicateId i2 = vocab.AddPredicate(TdKPredicateName(2), 2);
  PredicateId i3 = vocab.AddPredicate(TdKPredicateName(3), 2);
  ConjunctiveQuery query;
  TermId y = vocab.FreshVariable("y");
  // Base: the I_2-path of length 2^n from y to v, with every path node
  // carrying an incoming I_1 edge.  The anchoring is essential: grid_1's
  // double head gives every *real* rail node an I_1 sibling, while the
  // pins-chain I_2 edges that would otherwise fake the path lead to
  // sibling-free fresh terms.  Without the anchors the query is satisfied
  // by pins junk on every instance.
  TermId current = y;
  for (uint32_t step = 0; step < (1u << n); ++step) {
    TermId next = vocab.FreshVariable("c");
    query.atoms.push_back(Atom(i2, {current, next}));
    query.atoms.push_back(Atom(i1, {vocab.FreshVariable("s"), next}));
    current = next;
  }
  TermId v = current;
  // Left rail from y, right rail from v, bridged at the top.
  TermId u = AppendChain(vocab, i3, y, n, query);
  TermId w = AppendChain(vocab, i3, v, n, query);
  query.atoms.push_back(Atom(i2, {u, w}));
  query.answer_vars = {y};
  return query;
}

}  // namespace frontiers
