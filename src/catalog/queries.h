#ifndef FRONTIERS_CATALOG_QUERIES_H_
#define FRONTIERS_CATALOG_QUERIES_H_

#include <cstdint>
#include <string>

#include "base/vocabulary.h"
#include "tgd/conjunctive_query.h"

namespace frontiers {

/// Query builders for the Section 10/12 experiments.

/// The path query `P^n(x0, xn)` (Section 10's `G^n`/`R^n` notation):
///   q(x0,xn) :- P(x0,x1), ..., P(x_{n-1},xn)
/// with the two endpoints free.  Variables are freshly invented per call.
ConjunctiveQuery PathQuery(Vocabulary& vocab, const std::string& predicate,
                           uint32_t length);

/// The paper's `phi_R^n(x, y)` (Section 10):
///   q(x,y) :- R^n(x,x'), R^n(y,y'), G(x',y')
/// Its rewriting under T_d contains `G^{2^n}(x,y)` (Theorem 5 B).
ConjunctiveQuery PhiRn(Vocabulary& vocab, uint32_t n);

/// The `T_d^K` analogue of `phi_R^n` at the top two levels:
///   q(x,y) :- I_K^n(x,x'), I_K^n(y,y'), I_{K-1}(x',y')
/// For K = 2 this is PhiRn with I_2 = R and I_1 = G.  Over instances that
/// are I_{K-1}-paths, the level-(K-1) grid reproduces the 2^n law one
/// level up.
ConjunctiveQuery PhiTopKn(Vocabulary& vocab, uint32_t k, uint32_t n);

/// The *composed* witness query for K = 3 (Theorem 6's tower): a single
/// anchor `y` that is simultaneously
///   * the start of an I_2-path of length 2^n (the level-1 right rail the
///     chase grows from the end of an I_1-path), and
///   * the base of both level-2 rails meeting in an I_2 bridge:
///       q(y) :- I_2^{2^n}(y,v), I_3^n(y,u), I_3^n(v,w), I_2(u,w).
/// Over an I_1-path D with y = its last vertex, the level-1 grid supplies
/// the I_2-path iff |D| is a power of two with log2 |D| = 2^n, so the
/// minimal witness has 2^{2^n} edges - the K = 3 tower.
ConjunctiveQuery TdKComposedQuery(Vocabulary& vocab, uint32_t n);

}  // namespace frontiers

#endif  // FRONTIERS_CATALOG_QUERIES_H_
