#ifndef FRONTIERS_CATALOG_INSTANCES_H_
#define FRONTIERS_CATALOG_INSTANCES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/fact_set.h"
#include "base/vocabulary.h"

namespace frontiers {

/// Instance generators for the paper's witness families.  All generators
/// are deterministic; constants are named `<prefix><index>`.

/// A directed path of `length` edges of binary predicate `predicate`:
/// P(prefix0, prefix1), ..., P(prefix<length-1>, prefix<length>).
/// The paper's `G^n(a, b)` (Section 10) is `EdgePath(vocab, "G", n, "a")`.
FactSet EdgePath(Vocabulary& vocab, const std::string& predicate,
                 uint32_t length, const std::string& prefix = "a");

/// A directed cycle of `length` edges (Example 42's `D_n`):
/// E(a1,a2), ..., E(a<length>, a1).
FactSet EdgeCycle(Vocabulary& vocab, const std::string& predicate,
                  uint32_t length, const std::string& prefix = "a");

/// Example 39's star: E4(A, B1, B2, C1) plus R(A, C1), ..., R(A, C<colors>).
/// Predicates: E4 of arity 4, R of arity 2, matching
/// StickyExample39Theory's signature.
FactSet Star39Instance(Vocabulary& vocab, uint32_t colors);

/// Example 66's instance: E(A0, A1) plus P(B1), ..., P(B<paints>).
FactSet Example66Instance(Vocabulary& vocab, uint32_t paints);

/// First and last constants of an EdgePath/EdgeCycle-style family.
TermId PathConstant(Vocabulary& vocab, const std::string& prefix,
                    uint32_t index);

/// A pseudo-random instance over the given binary predicates: `num_atoms`
/// atoms over `num_terms` constants (prefix "r"), drawn with a fixed LCG
/// from `seed`.  If `max_degree` is nonzero, atoms that would push a
/// term's atom-degree beyond it are skipped (used by the bounded-degree
/// locality experiments, Definition 40).
FactSet RandomBinaryInstance(Vocabulary& vocab,
                             const std::vector<std::string>& predicates,
                             uint32_t num_terms, uint32_t num_atoms,
                             uint64_t seed, uint32_t max_degree = 0);

/// All subsets of `facts` of size exactly `size` (by index combination).
/// Locality testing (Definition 30) enumerates these.
std::vector<FactSet> SubsetsOfSize(const FactSet& facts, uint32_t size);

/// All subsets of `facts` of size at most `size` (nonempty).
std::vector<FactSet> SubsetsUpToSize(const FactSet& facts, uint32_t size);

}  // namespace frontiers

#endif  // FRONTIERS_CATALOG_INSTANCES_H_
