#include "catalog/instances.h"

#include <functional>

namespace frontiers {

TermId PathConstant(Vocabulary& vocab, const std::string& prefix,
                    uint32_t index) {
  return vocab.Constant(prefix + std::to_string(index));
}

FactSet EdgePath(Vocabulary& vocab, const std::string& predicate,
                 uint32_t length, const std::string& prefix) {
  PredicateId pred = vocab.AddPredicate(predicate, 2);
  FactSet out;
  for (uint32_t i = 0; i < length; ++i) {
    out.Insert(Atom(pred, {PathConstant(vocab, prefix, i),
                           PathConstant(vocab, prefix, i + 1)}));
  }
  return out;
}

FactSet EdgeCycle(Vocabulary& vocab, const std::string& predicate,
                  uint32_t length, const std::string& prefix) {
  PredicateId pred = vocab.AddPredicate(predicate, 2);
  FactSet out;
  for (uint32_t i = 1; i <= length; ++i) {
    uint32_t next = (i == length) ? 1 : i + 1;
    out.Insert(Atom(pred, {PathConstant(vocab, prefix, i),
                           PathConstant(vocab, prefix, next)}));
  }
  return out;
}

FactSet Star39Instance(Vocabulary& vocab, uint32_t colors) {
  PredicateId e = vocab.AddPredicate("E4", 4);
  PredicateId r = vocab.AddPredicate("R", 2);
  TermId a = vocab.Constant("A");
  FactSet out;
  out.Insert(Atom(e, {a, vocab.Constant("B1"), vocab.Constant("B2"),
                      vocab.Constant("C1")}));
  for (uint32_t i = 1; i <= colors; ++i) {
    out.Insert(Atom(r, {a, vocab.Constant("C" + std::to_string(i))}));
  }
  return out;
}

FactSet Example66Instance(Vocabulary& vocab, uint32_t paints) {
  PredicateId e = vocab.AddPredicate("E", 2);
  PredicateId p = vocab.AddPredicate("P", 1);
  FactSet out;
  out.Insert(Atom(e, {vocab.Constant("A0"), vocab.Constant("A1")}));
  for (uint32_t i = 1; i <= paints; ++i) {
    out.Insert(Atom(p, {vocab.Constant("B" + std::to_string(i))}));
  }
  return out;
}

FactSet RandomBinaryInstance(Vocabulary& vocab,
                             const std::vector<std::string>& predicates,
                             uint32_t num_terms, uint32_t num_atoms,
                             uint64_t seed, uint32_t max_degree) {
  std::vector<PredicateId> preds;
  preds.reserve(predicates.size());
  for (const std::string& name : predicates) {
    preds.push_back(vocab.AddPredicate(name, 2));
  }
  // Deterministic 64-bit LCG (Knuth MMIX constants).
  uint64_t state = seed * 2862933555777941757ull + 3037000493ull;
  auto next = [&state](uint32_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>((state >> 33) % bound);
  };
  FactSet out;
  uint32_t attempts = 0;
  while (out.size() < num_atoms && attempts < num_atoms * 20) {
    ++attempts;
    PredicateId pred = preds[next(static_cast<uint32_t>(preds.size()))];
    TermId s = PathConstant(vocab, "r", next(num_terms));
    TermId t = PathConstant(vocab, "r", next(num_terms));
    if (max_degree > 0 && (out.AtomDegree(s) >= max_degree ||
                           out.AtomDegree(t) >= max_degree)) {
      continue;
    }
    out.Insert(Atom(pred, {s, t}));
  }
  return out;
}

std::vector<FactSet> SubsetsOfSize(const FactSet& facts, uint32_t size) {
  std::vector<FactSet> out;
  const size_t n = facts.size();
  if (size > n) return out;
  std::vector<uint32_t> picked;
  std::function<void(uint32_t)> choose = [&](uint32_t from) {
    if (picked.size() == size) {
      FactSet subset;
      for (uint32_t i : picked) subset.Insert(facts.atoms()[i]);
      out.push_back(std::move(subset));
      return;
    }
    for (uint32_t i = from; i < n; ++i) {
      if (n - i < size - picked.size()) break;
      picked.push_back(i);
      choose(i + 1);
      picked.pop_back();
    }
  };
  choose(0);
  return out;
}

std::vector<FactSet> SubsetsUpToSize(const FactSet& facts, uint32_t size) {
  std::vector<FactSet> out;
  for (uint32_t k = 1; k <= size && k <= facts.size(); ++k) {
    std::vector<FactSet> of_size = SubsetsOfSize(facts, k);
    for (FactSet& subset : of_size) out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace frontiers
