#ifndef FRONTIERS_TGD_PARSER_H_
#define FRONTIERS_TGD_PARSER_H_

#include <string_view>

#include "base/status.h"
#include "base/vocabulary.h"
#include "tgd/conjunctive_query.h"
#include "tgd/tgd.h"

namespace frontiers {

/// Text syntax for rules, theories and queries.
///
/// Rules:
///   `E(x,y) -> exists z . E(y,z)`
///   `mother: Human(y) -> exists z . Mother(y,z)`     (optional label)
///   `true -> exists z . R(x,z)`                      (x ranges over the
///                                                     active domain; the
///                                                     paper's (pins) form)
///   `E(x,y), R(z,y) -> R(y,z)`                       (Datalog rule)
/// The `.` after the existential variable list is optional.  Multi-head
/// rules simply list several atoms after `->`.
///
/// Theories: rules separated by `;` or newlines; `#` starts a comment.
///
/// Queries:
///   `q(x,y) :- R(x,z), G(z,y)`   (free variables x,y; the head name is
///                                 arbitrary and ignored)
///   `R(x,z), G(z,y)`             (Boolean CQ)
///
/// Term convention: an identifier starting with a lowercase letter or `_`
/// is a variable; identifiers starting with an uppercase letter or a digit
/// are constants.  Predicates are identified by position (an identifier
/// directly followed by `(`), so uppercase predicate names do not clash
/// with constants.  Predicate arities are fixed at first use and checked
/// afterwards.

/// Parses a single rule.
Result<Tgd> ParseRule(Vocabulary& vocab, std::string_view text);

/// Parses a theory (a sequence of rules).
Result<Theory> ParseTheory(Vocabulary& vocab, std::string_view text,
                           std::string name = "");

/// Parses a conjunctive query.
Result<ConjunctiveQuery> ParseQuery(Vocabulary& vocab, std::string_view text);

/// Parses a comma-separated list of ground atoms into a fact set, e.g.
/// `E(A,B), E(B,C)`.  Variables are rejected.
Result<FactSet> ParseFacts(Vocabulary& vocab, std::string_view text);

/// Reads and parses a theory file (same syntax as ParseTheory).
Result<Theory> LoadTheoryFile(Vocabulary& vocab, const std::string& path);

/// Reads and parses a facts file.  Atoms may be separated by commas and/or
/// newlines; `#` comments are allowed.
Result<FactSet> LoadFactsFile(Vocabulary& vocab, const std::string& path);

}  // namespace frontiers

#endif  // FRONTIERS_TGD_PARSER_H_
