#ifndef FRONTIERS_TGD_SUBSTITUTION_H_
#define FRONTIERS_TGD_SUBSTITUTION_H_

#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/vocabulary.h"

namespace frontiers {

/// A (partial) mapping from terms to terms.  Used both as a variable
/// assignment (query variables to domain elements) and as a homomorphism
/// between structures.  Terms without an entry map to themselves.
using Substitution = std::unordered_map<TermId, TermId>;

/// Applies `sub` to a term (identity outside the substitution's domain).
inline TermId Apply(const Substitution& sub, TermId t) {
  auto it = sub.find(t);
  return it == sub.end() ? t : it->second;
}

/// Applies `sub` to every argument of an atom.
inline Atom Apply(const Substitution& sub, const Atom& atom) {
  Atom out;
  out.predicate = atom.predicate;
  out.args.reserve(atom.args.size());
  for (TermId t : atom.args) out.args.push_back(Apply(sub, t));
  return out;
}

/// Applies `sub` to every atom of a list.
inline std::vector<Atom> Apply(const Substitution& sub,
                               const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(Apply(sub, a));
  return out;
}

}  // namespace frontiers

#endif  // FRONTIERS_TGD_SUBSTITUTION_H_
