#ifndef FRONTIERS_TGD_CLASSIFY_H_
#define FRONTIERS_TGD_CLASSIFY_H_

#include <string>
#include <vector>

#include "base/vocabulary.h"
#include "tgd/tgd.h"

namespace frontiers {

/// Syntactic classifiers for the theory classes named in the paper's
/// introduction.  Membership in each of these classes implies (or is
/// folklore-equivalent to) properties the experiments measure: linear and
/// guarded-BDD theories are local (Theorem 3 remark), sticky theories are
/// BDD and bd-local (Section 9), Datalog theories never invent terms, etc.

/// True if every rule body has at most one atom ("linear").
bool IsLinear(const Theory& theory);

/// True if no rule has existential variables ("Datalog").
bool IsDatalog(const Theory& theory);

/// True if every rule body contains a *guard*: an atom containing all the
/// universal variables of the body.  Rules with empty bodies count as
/// guarded.
bool IsGuarded(const Vocabulary& vocab, const Theory& theory);

/// True if every rule body is connected (its Gaifman graph on variables is
/// connected); Section 2, "Connected queries, rules and theories".
bool IsConnectedTheory(const Vocabulary& vocab, const Theory& theory);
/// Connectivity of a single rule body.
bool IsConnectedRule(const Vocabulary& vocab, const Tgd& rule);

/// True if every relation symbol used by the theory has arity at most 2.
bool IsBinarySignature(const Vocabulary& vocab, const Theory& theory);

/// True if the theory is *sticky* (Calì, Gottlob, Pieris): computes the
/// marking fixpoint over predicate positions and checks that no variable
/// occurring more than once in some rule body sits at a marked position.
/// Only defined for single-head theories; multi-head rules are treated by
/// checking every head atom during propagation.
bool IsSticky(const Vocabulary& vocab, const Theory& theory);

/// A rule is *detached* (Section 13) if it is existential and has an empty
/// frontier, i.e. its freshly created atom shares no terms with the rest of
/// the chase.
bool IsDetachedRule(const Tgd& rule);

/// The Datalog rules of a theory (`T_DL`, Section 13).
Theory DatalogPart(const Theory& theory);

/// The existential rules of a theory (`T_exists`, Section 13).
Theory ExistentialPart(const Theory& theory);

/// Human-readable classification summary for reports:
/// e.g. "linear, guarded, connected, binary".
std::string DescribeClasses(const Vocabulary& vocab, const Theory& theory);

}  // namespace frontiers

#endif  // FRONTIERS_TGD_CLASSIFY_H_
