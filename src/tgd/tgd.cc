#include "tgd/tgd.h"

#include <algorithm>
#include <unordered_set>

#include "base/check.h"

namespace frontiers {

namespace {

std::vector<TermId> VariablesInOrder(const Vocabulary& vocab,
                                     const std::vector<Atom>& atoms) {
  std::vector<TermId> vars;
  std::unordered_set<TermId> seen;
  for (const Atom& atom : atoms) {
    for (TermId t : atom.args) {
      if (vocab.IsVariable(t) && seen.insert(t).second) vars.push_back(t);
    }
  }
  return vars;
}

}  // namespace

Tgd MakeTgd(const Vocabulary& vocab, std::vector<Atom> body,
            std::vector<Atom> head, std::vector<TermId> existential_vars,
            std::string name) {
  FRONTIERS_CHECK(!head.empty(), "TGD '" + name + "' has an empty head");
  Tgd rule;
  rule.name = std::move(name);
  rule.body = std::move(body);
  rule.head = std::move(head);
  rule.existential_vars = std::move(existential_vars);

  rule.body_vars = VariablesInOrder(vocab, rule.body);
  std::unordered_set<TermId> body_var_set(rule.body_vars.begin(),
                                          rule.body_vars.end());
  std::unordered_set<TermId> existential_set(rule.existential_vars.begin(),
                                             rule.existential_vars.end());
  for (TermId v : rule.existential_vars) {
    FRONTIERS_CHECK(body_var_set.count(v) == 0,
                    "TGD '" + rule.name + "': existential variable " +
                        vocab.TermToString(v) + " occurs in the body");
  }

  std::vector<TermId> head_vars = VariablesInOrder(vocab, rule.head);
  for (TermId v : head_vars) {
    if (existential_set.count(v) > 0) continue;
    rule.head_universal_vars.push_back(v);
    if (body_var_set.count(v) > 0) {
      rule.frontier.push_back(v);
    } else {
      rule.domain_vars.push_back(v);
    }
  }
  return rule;
}

bool IsDatalogRule(const Tgd& rule) { return rule.existential_vars.empty(); }

std::string RuleToString(const Vocabulary& vocab, const Tgd& rule) {
  std::string out;
  if (!rule.name.empty()) out += rule.name + ": ";
  out += rule.body.empty() ? "true" : AtomsToString(vocab, rule.body);
  out += " -> ";
  if (!rule.existential_vars.empty()) {
    out += "exists ";
    for (size_t i = 0; i < rule.existential_vars.size(); ++i) {
      if (i > 0) out += ",";
      out += vocab.TermToString(rule.existential_vars[i]);
    }
    out += " . ";
  }
  out += AtomsToString(vocab, rule.head);
  return out;
}

std::string TheoryToString(const Vocabulary& vocab, const Theory& theory) {
  std::string out;
  for (const Tgd& rule : theory.rules) {
    out += RuleToString(vocab, rule);
    out += "\n";
  }
  return out;
}

std::string HeadTypeSignature(const Vocabulary& vocab, const Tgd& rule) {
  // Canonical numbering: universal head variables are u0,u1,... and
  // existential variables e0,e1,..., both by first occurrence in the head.
  std::unordered_map<TermId, std::string> label;
  std::unordered_set<TermId> existential_set(rule.existential_vars.begin(),
                                             rule.existential_vars.end());
  uint32_t next_u = 0, next_e = 0;
  std::string sig;
  for (const Atom& atom : rule.head) {
    sig += vocab.PredicateName(atom.predicate);
    sig += "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) sig += ",";
      TermId t = atom.args[i];
      if (!vocab.IsVariable(t)) {
        sig += "c:" + vocab.TermToString(t);
        continue;
      }
      auto it = label.find(t);
      if (it == label.end()) {
        std::string l = existential_set.count(t) > 0
                            ? "e" + std::to_string(next_e++)
                            : "u" + std::to_string(next_u++);
        it = label.emplace(t, std::move(l)).first;
      }
      sig += it->second;
    }
    sig += ")";
  }
  return sig;
}

SkolemizedHead Skolemize(Vocabulary& vocab, const Tgd& rule) {
  SkolemizedHead out;
  out.fn_args = rule.head_universal_vars;
  const std::string type = HeadTypeSignature(vocab, rule);
  const uint32_t arity = static_cast<uint32_t>(out.fn_args.size());
  // Re-derive the canonical existential labels in head-first-occurrence
  // order so that the function symbol key matches the type signature.
  std::unordered_set<TermId> existential_set(rule.existential_vars.begin(),
                                             rule.existential_vars.end());
  std::unordered_set<TermId> seen;
  uint32_t next_e = 0;
  for (const Atom& atom : rule.head) {
    for (TermId t : atom.args) {
      if (!vocab.IsVariable(t) || !seen.insert(t).second) continue;
      if (existential_set.count(t) > 0) {
        std::string fn_sig = type + "#e" + std::to_string(next_e++);
        out.fn_of[t] = vocab.SkolemFunction(fn_sig, arity);
      }
    }
  }
  return out;
}

}  // namespace frontiers
