#include "tgd/conjunctive_query.h"

#include <unordered_map>

namespace frontiers {

std::vector<TermId> QueryVariables(const Vocabulary& vocab,
                                   const ConjunctiveQuery& query) {
  std::vector<TermId> vars;
  std::unordered_set<TermId> seen;
  for (TermId v : query.answer_vars) {
    if (vocab.IsVariable(v) && seen.insert(v).second) vars.push_back(v);
  }
  for (const Atom& atom : query.atoms) {
    for (TermId t : atom.args) {
      if (vocab.IsVariable(t) && seen.insert(t).second) vars.push_back(t);
    }
  }
  return vars;
}

std::vector<TermId> ExistentialVariables(const Vocabulary& vocab,
                                         const ConjunctiveQuery& query) {
  std::unordered_set<TermId> answer(query.answer_vars.begin(),
                                    query.answer_vars.end());
  std::vector<TermId> out;
  for (TermId v : QueryVariables(vocab, query)) {
    if (answer.find(v) == answer.end()) out.push_back(v);
  }
  return out;
}

bool IsConnected(const Vocabulary& vocab, const ConjunctiveQuery& query) {
  (void)vocab;
  if (query.atoms.empty()) return true;
  // Union-find over the terms occurring in atoms.
  std::unordered_map<TermId, TermId> parent;
  auto find = [&parent](TermId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&parent, &find](TermId a, TermId b) {
    TermId ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };
  for (const Atom& atom : query.atoms) {
    for (TermId t : atom.args) {
      if (parent.find(t) == parent.end()) parent[t] = t;
    }
    for (size_t i = 1; i < atom.args.size(); ++i) {
      unite(atom.args[0], atom.args[i]);
    }
  }
  // Zero-ary atoms contribute no terms; a query made only of them is
  // connected by convention.
  if (parent.empty()) return true;
  TermId root = kNoTerm;
  for (auto& [t, _] : parent) {
    TermId r = find(t);
    if (root == kNoTerm) {
      root = r;
    } else if (r != root) {
      return false;
    }
  }
  return true;
}

FactSet QueryAsFactSet(const ConjunctiveQuery& query) {
  FactSet out;
  for (const Atom& atom : query.atoms) out.Insert(atom);
  return out;
}

std::string QueryToString(const Vocabulary& vocab,
                          const ConjunctiveQuery& query) {
  std::string out;
  if (!query.answer_vars.empty()) {
    out += "q(";
    for (size_t i = 0; i < query.answer_vars.size(); ++i) {
      if (i > 0) out += ",";
      out += vocab.TermToString(query.answer_vars[i]);
    }
    out += ") :- ";
  }
  out += AtomsToString(vocab, query.atoms);
  return out;
}

}  // namespace frontiers
