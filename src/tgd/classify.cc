#include "tgd/classify.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "tgd/conjunctive_query.h"

namespace frontiers {

bool IsLinear(const Theory& theory) {
  for (const Tgd& rule : theory.rules) {
    if (rule.body.size() > 1) return false;
  }
  return true;
}

bool IsDatalog(const Theory& theory) {
  for (const Tgd& rule : theory.rules) {
    if (!IsDatalogRule(rule)) return false;
  }
  return true;
}

bool IsGuarded(const Vocabulary& vocab, const Theory& theory) {
  for (const Tgd& rule : theory.rules) {
    if (rule.body.empty()) continue;
    std::unordered_set<TermId> body_vars(rule.body_vars.begin(),
                                         rule.body_vars.end());
    bool has_guard = false;
    for (const Atom& atom : rule.body) {
      std::unordered_set<TermId> in_atom;
      for (TermId t : atom.args) {
        if (vocab.IsVariable(t)) in_atom.insert(t);
      }
      if (in_atom.size() == body_vars.size()) {
        has_guard = true;
        break;
      }
    }
    if (!has_guard) return false;
  }
  return true;
}

bool IsConnectedRule(const Vocabulary& vocab, const Tgd& rule) {
  ConjunctiveQuery body_query;
  body_query.atoms = rule.body;
  return IsConnected(vocab, body_query);
}

bool IsConnectedTheory(const Vocabulary& vocab, const Theory& theory) {
  for (const Tgd& rule : theory.rules) {
    if (!IsConnectedRule(vocab, rule)) return false;
  }
  return true;
}

bool IsBinarySignature(const Vocabulary& vocab, const Theory& theory) {
  for (const Tgd& rule : theory.rules) {
    for (const Atom& atom : rule.body) {
      if (vocab.PredicateArity(atom.predicate) > 2) return false;
    }
    for (const Atom& atom : rule.head) {
      if (vocab.PredicateArity(atom.predicate) > 2) return false;
    }
  }
  return true;
}

namespace {

using Position = std::pair<PredicateId, uint32_t>;

// Positions (in any atom of `atoms`) at which variable `v` occurs.
std::vector<Position> PositionsOf(TermId v, const std::vector<Atom>& atoms) {
  std::vector<Position> out;
  for (const Atom& atom : atoms) {
    for (uint32_t i = 0; i < atom.args.size(); ++i) {
      if (atom.args[i] == v) out.push_back({atom.predicate, i});
    }
  }
  return out;
}

}  // namespace

bool IsSticky(const Vocabulary& vocab, const Theory& theory) {
  // Marking procedure over predicate positions (Cali-Gottlob-Pieris).
  std::set<Position> marked;

  // Initial step: body positions of variables that do not reach the head.
  for (const Tgd& rule : theory.rules) {
    std::unordered_set<TermId> head_vars;
    for (const Atom& atom : rule.head) {
      for (TermId t : atom.args) {
        if (vocab.IsVariable(t)) head_vars.insert(t);
      }
    }
    for (TermId v : rule.body_vars) {
      if (head_vars.count(v) == 0) {
        for (const Position& p : PositionsOf(v, rule.body)) marked.insert(p);
      }
    }
  }

  // Propagation: if a body variable reaches a marked head position, mark all
  // of its body positions.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& rule : theory.rules) {
      for (TermId v : rule.body_vars) {
        bool reaches_marked = false;
        for (const Position& p : PositionsOf(v, rule.head)) {
          if (marked.count(p) > 0) {
            reaches_marked = true;
            break;
          }
        }
        if (!reaches_marked) continue;
        for (const Position& p : PositionsOf(v, rule.body)) {
          if (marked.insert(p).second) changed = true;
        }
      }
    }
  }

  // Sticky test: no variable occurring more than once in a body may sit at
  // a marked position.
  for (const Tgd& rule : theory.rules) {
    std::unordered_map<TermId, uint32_t> occurrences;
    for (const Atom& atom : rule.body) {
      for (TermId t : atom.args) {
        if (vocab.IsVariable(t)) ++occurrences[t];
      }
    }
    for (const auto& [v, count] : occurrences) {
      if (count < 2) continue;
      for (const Position& p : PositionsOf(v, rule.body)) {
        if (marked.count(p) > 0) return false;
      }
    }
  }
  return true;
}

bool IsDetachedRule(const Tgd& rule) {
  return !IsDatalogRule(rule) && rule.frontier.empty() &&
         rule.domain_vars.empty();
}

Theory DatalogPart(const Theory& theory) {
  Theory out;
  out.name = theory.name + "_DL";
  for (const Tgd& rule : theory.rules) {
    if (IsDatalogRule(rule)) out.rules.push_back(rule);
  }
  return out;
}

Theory ExistentialPart(const Theory& theory) {
  Theory out;
  out.name = theory.name + "_exists";
  for (const Tgd& rule : theory.rules) {
    if (!IsDatalogRule(rule)) out.rules.push_back(rule);
  }
  return out;
}

std::string DescribeClasses(const Vocabulary& vocab, const Theory& theory) {
  std::string out;
  auto add = [&out](const std::string& tag) {
    if (!out.empty()) out += ", ";
    out += tag;
  };
  if (IsLinear(theory)) add("linear");
  if (IsDatalog(theory)) add("datalog");
  if (IsGuarded(vocab, theory)) add("guarded");
  if (IsSticky(vocab, theory)) add("sticky");
  if (IsConnectedTheory(vocab, theory)) add("connected");
  if (IsBinarySignature(vocab, theory)) add("binary");
  if (out.empty()) out = "(none of the syntactic classes)";
  return out;
}

}  // namespace frontiers
