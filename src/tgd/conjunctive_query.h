#ifndef FRONTIERS_TGD_CONJUNCTIVE_QUERY_H_
#define FRONTIERS_TGD_CONJUNCTIVE_QUERY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "base/atom.h"
#include "base/fact_set.h"
#include "base/vocabulary.h"

namespace frontiers {

/// A conjunctive query `psi(y) = exists x . beta(x, y)` (Section 2).
///
/// `atoms` is the body `beta`; `answer_vars` is the tuple of free variables
/// `y` (empty for a Boolean CQ).  Every variable occurring in the body and
/// not listed in `answer_vars` is implicitly existentially quantified.
/// Constants may occur in the body.  The *size* of a CQ is its number of
/// atoms, exactly as in the paper.
struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  std::vector<TermId> answer_vars;

  /// Number of atoms (the paper's `|psi(y)|`).
  size_t size() const { return atoms.size(); }

  /// True if the query has no free variables.
  bool IsBoolean() const { return answer_vars.empty(); }
};

/// All variables of the query in first-occurrence order (answer variables
/// first, body order after).
std::vector<TermId> QueryVariables(const Vocabulary& vocab,
                                   const ConjunctiveQuery& query);

/// The existentially quantified variables (all variables minus answer vars).
std::vector<TermId> ExistentialVariables(const Vocabulary& vocab,
                                         const ConjunctiveQuery& query);

/// True if the query's Gaifman graph (vertices = variables *and* constants,
/// edges = co-occurrence in an atom) is connected.  Queries with no atoms
/// count as connected.
bool IsConnected(const Vocabulary& vocab, const ConjunctiveQuery& query);

/// Views the query body as a structure whose domain elements are the
/// query's terms (the standard "CQ as canonical database" move, used for
/// containment checks; see the footnote below Observation 2).
FactSet QueryAsFactSet(const ConjunctiveQuery& query);

/// Renders `q(y1,..) :- A(..), B(..)` (or just the body for Boolean CQs).
std::string QueryToString(const Vocabulary& vocab,
                          const ConjunctiveQuery& query);

}  // namespace frontiers

#endif  // FRONTIERS_TGD_CONJUNCTIVE_QUERY_H_
