#ifndef FRONTIERS_TGD_TGD_H_
#define FRONTIERS_TGD_TGD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/atom.h"
#include "base/vocabulary.h"

namespace frontiers {

/// A Tuple Generating Dependency
/// `forall x,y ( beta(x,y) -> exists w alpha(y,w) )` (Section 2).
///
/// The canonical form in the paper is single-head; this library supports
/// heads with several atoms because the paper's own theory `T_d`
/// (Definition 45) is stated with multi-head rules (footnote 31 sketches
/// the single-head encoding, which the catalog also provides).
///
/// Two non-standard but paper-mandated liberties:
///  * `body` may be empty — the paper's `(loop)` rule `true -> ...`;
///  * a universal variable may occur in the head without occurring in the
///    body — the paper's `(pins)` rule `forall x (true -> exists z R(x,z))`.
///    Such variables are recorded in `domain_vars` and range over the
///    active domain of the current structure during the chase.
struct Tgd {
  /// Optional label used in printing and experiment reports.
  std::string name;
  /// Body atoms `beta` (empty encodes `true`).
  std::vector<Atom> body;
  /// Head atoms `alpha` (at least one).
  std::vector<Atom> head;
  /// The existentially quantified head variables `w`, in declaration order.
  std::vector<TermId> existential_vars;

  // ---- Derived fields, computed by MakeTgd ----

  /// Variables occurring in both body and head (`fr(rho)`, Section 2).
  std::vector<TermId> frontier;
  /// Universal head variables that do not occur in the body; they range
  /// over the active domain (only the paper's (pins)-style rules use this).
  std::vector<TermId> domain_vars;
  /// All body variables, in first-occurrence order.
  std::vector<TermId> body_vars;
  /// Universal head variables (frontier + domain vars) in order of first
  /// occurrence *in the head*; this is the Skolem function argument order
  /// of Definition 4.
  std::vector<TermId> head_universal_vars;
};

/// Builds a Tgd and computes its derived fields.  Head variables that are
/// neither body variables nor listed in `existential_vars` become domain
/// variables.  Aborts on malformed input (existential variable occurring in
/// the body, empty head) — these are programming errors.
Tgd MakeTgd(const Vocabulary& vocab, std::vector<Atom> body,
            std::vector<Atom> head, std::vector<TermId> existential_vars,
            std::string name = "");

/// True if the rule has no existential variables (a Datalog rule).
bool IsDatalogRule(const Tgd& rule);

/// Renders `body -> exists w . head`.
std::string RuleToString(const Vocabulary& vocab, const Tgd& rule);

/// A theory / rule set: a finite set of TGDs (Section 2).
struct Theory {
  std::vector<Tgd> rules;

  /// Optional label for reports.
  std::string name;
};

/// Renders one rule per line.
std::string TheoryToString(const Vocabulary& vocab, const Theory& theory);

/// Canonical signature of the *isomorphism type* of a rule head
/// (Definition 3): depends on the head's relation symbols, the equality
/// pattern among its variables, which positions hold existential variables,
/// and any constants — but not on variable names.  Heads of different rules
/// with equal signatures share Skolem function symbols, exactly as
/// Definition 4 requires (`f_i^tau` depends only on `tau`).
std::string HeadTypeSignature(const Vocabulary& vocab, const Tgd& rule);

/// The Skolemization `sh(rho)` of a rule head (Definition 4), in a form
/// ready for rule application: for each existential variable the interned
/// Skolem function, plus the ordered argument list (the universal head
/// variables).
struct SkolemizedHead {
  /// Universal head variables in head-first-occurrence order; under an
  /// assignment sigma, the Skolem term for existential `w` is
  /// `fn_of.at(w)(sigma(fn_args[0]), ..., sigma(fn_args[k-1]))`.
  std::vector<TermId> fn_args;
  /// Skolem function symbol for each existential variable.
  std::unordered_map<TermId, SkolemFnId> fn_of;
};

/// Interns the Skolem functions for `rule` in `vocab` and returns the
/// skolemized head.
SkolemizedHead Skolemize(Vocabulary& vocab, const Tgd& rule);

}  // namespace frontiers

#endif  // FRONTIERS_TGD_TGD_H_
