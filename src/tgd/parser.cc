#include "tgd/parser.h"

#include <cctype>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace frontiers {

namespace {

// --- Input limits -----------------------------------------------------------
// The grammar is deliberately flat (atoms cannot nest), so the parser has no
// recursion to overflow; these caps bound the dimensions that *are*
// unbounded in hostile input — token length, atom width, conjunct length
// and rule count — turning pathological inputs surfaced by the fuzzer
// (tests/parser_fuzz_test.cc) into position-carrying errors instead of
// multi-gigabyte allocations.  The values are far above anything a real
// theory file uses.

/// Longest accepted identifier (predicate, constant or variable name).
constexpr size_t kMaxIdentifierLength = 4096;
/// Widest accepted atom.
constexpr size_t kMaxArity = 1024;
/// Longest accepted conjunction (rule body/head, query, fact list).
constexpr size_t kMaxAtomsPerConjunction = 65536;
/// Most rules in one theory text.
constexpr size_t kMaxRulesPerTheory = 65536;

enum class TokenKind {
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kColon,
  kSemicolon,
  kDot,
  kArrow,      // ->
  kTurnstile,  // :-
  kNewline,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (c == '#') {
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      if (c == '\n') {
        tokens.push_back({TokenKind::kNewline, "\n", i});
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '-' && i + 1 < text_.size() && text_[i + 1] == '>') {
        tokens.push_back({TokenKind::kArrow, "->", i});
        i += 2;
        continue;
      }
      if (c == ':' && i + 1 < text_.size() && text_[i + 1] == '-') {
        tokens.push_back({TokenKind::kTurnstile, ":-", i});
        i += 2;
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", i});
          ++i;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", i});
          ++i;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", i});
          ++i;
          continue;
        case ':':
          tokens.push_back({TokenKind::kColon, ":", i});
          ++i;
          continue;
        case ';':
          tokens.push_back({TokenKind::kSemicolon, ";", i});
          ++i;
          continue;
        case '.':
          tokens.push_back({TokenKind::kDot, ".", i});
          ++i;
          continue;
        default:
          break;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '_' || text_[i] == '\'')) {
          ++i;
        }
        if (i - start > kMaxIdentifierLength) {
          return Status::Error(
              "identifier of " + std::to_string(i - start) +
              " characters at position " + std::to_string(start) +
              " exceeds the " + std::to_string(kMaxIdentifierLength) +
              "-character limit");
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(text_.substr(start, i - start)), start});
        continue;
      }
      // Garbage bytes: render printable characters literally, everything
      // else (control bytes, UTF-8 tails, NUL) as a hex escape, so the
      // error message itself stays clean text.
      std::string shown;
      if (std::isprint(static_cast<unsigned char>(c))) {
        shown = std::string(1, c);
      } else {
        char hex[8];
        std::snprintf(hex, sizeof(hex), "\\x%02x",
                      static_cast<unsigned char>(c));
        shown = hex;
      }
      return Status::Error("unexpected character '" + shown +
                           "' at position " + std::to_string(i));
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  std::string_view text_;
};

bool IsVariableName(const std::string& name) {
  return !name.empty() &&
         (std::islower(static_cast<unsigned char>(name[0])) || name[0] == '_');
}

class Parser {
 public:
  Parser(Vocabulary& vocab, std::vector<Token> tokens)
      : vocab_(vocab), tokens_(std::move(tokens)) {}

  // --- token stream helpers ----------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  void SkipNewlines() {
    while (Peek().kind == TokenKind::kNewline) Next();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  Status ErrorAt(const Token& token, const std::string& what) {
    return Status::Error(what + " near position " +
                         std::to_string(token.position) + " ('" + token.text +
                         "')");
  }

  // --- grammar -------------------------------------------------------------

  // atom := ident '(' [term {',' term}] ')'
  Result<Atom> ParseAtom() {
    const Token& name = Next();
    if (name.kind != TokenKind::kIdent) {
      return ErrorAt(name, "expected predicate name");
    }
    if (Next().kind != TokenKind::kLParen) {
      return ErrorAt(Peek(), "expected '(' after predicate name");
    }
    std::vector<TermId> args;
    if (Peek().kind != TokenKind::kRParen) {
      for (;;) {
        const Token& term = Next();
        if (term.kind != TokenKind::kIdent) {
          return ErrorAt(term, "expected term");
        }
        if (args.size() >= kMaxArity) {
          return ErrorAt(term, "atom of predicate '" + name.text +
                                   "' exceeds the maximum arity of " +
                                   std::to_string(kMaxArity));
        }
        args.push_back(IsVariableName(term.text)
                           ? vocab_.Variable(term.text)
                           : vocab_.Constant(term.text));
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
    }
    if (Next().kind != TokenKind::kRParen) {
      return ErrorAt(Peek(), "expected ')'");
    }
    auto existing = vocab_.FindPredicate(name.text);
    if (existing.has_value() &&
        vocab_.PredicateArity(*existing) != args.size()) {
      return ErrorAt(name, "predicate '" + name.text + "' used with arity " +
                               std::to_string(args.size()) + " but declared " +
                               std::to_string(vocab_.PredicateArity(*existing)));
    }
    PredicateId pred =
        vocab_.AddPredicate(name.text, static_cast<uint32_t>(args.size()));
    return Atom(pred, std::move(args));
  }

  // atoms := atom {',' atom}; newlines are not atom separators.
  Result<std::vector<Atom>> ParseAtoms() {
    std::vector<Atom> atoms;
    for (;;) {
      if (atoms.size() >= kMaxAtomsPerConjunction) {
        return ErrorAt(Peek(), "conjunction exceeds the maximum of " +
                                   std::to_string(kMaxAtomsPerConjunction) +
                                   " atoms");
      }
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      atoms.push_back(std::move(atom.value()));
      if (Peek().kind == TokenKind::kComma) {
        Next();
        SkipNewlines();
        continue;
      }
      break;
    }
    return atoms;
  }

  // rule := [label ':'] body '->' head
  Result<Tgd> ParseOneRule() {
    std::string label;
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kColon) {
      label = Next().text;
      Next();  // ':'
      SkipNewlines();
    }
    std::vector<Atom> body;
    if (Peek().kind == TokenKind::kIdent && Peek().text == "true" &&
        Peek(1).kind != TokenKind::kLParen) {
      Next();
    } else {
      Result<std::vector<Atom>> parsed = ParseAtoms();
      if (!parsed.ok()) return parsed.status();
      body = std::move(parsed.value());
    }
    if (Next().kind != TokenKind::kArrow) {
      return ErrorAt(Peek(), "expected '->'");
    }
    SkipNewlines();
    std::vector<TermId> existentials;
    if (Peek().kind == TokenKind::kIdent && Peek().text == "exists") {
      Next();
      for (;;) {
        const Token& v = Next();
        if (v.kind != TokenKind::kIdent || !IsVariableName(v.text)) {
          return ErrorAt(v, "expected existential variable name");
        }
        const TermId var = vocab_.Variable(v.text);
        // MakeTgd treats an existential occurring in the body as a
        // programming error and aborts; here it is *input*, so reject it
        // with a positioned parse error instead.
        for (const Atom& atom : body) {
          if (atom.ContainsTerm(var)) {
            return ErrorAt(v, "existential variable '" + v.text +
                                  "' occurs in the rule body");
          }
        }
        existentials.push_back(var);
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      if (Peek().kind == TokenKind::kDot) Next();
      SkipNewlines();
    }
    Result<std::vector<Atom>> head = ParseAtoms();
    if (!head.ok()) return head.status();
    return MakeTgd(vocab_, std::move(body), std::move(head.value()),
                   std::move(existentials), std::move(label));
  }

  Result<Theory> ParseWholeTheory(std::string name) {
    Theory theory;
    theory.name = std::move(name);
    for (;;) {
      SkipNewlines();
      while (Peek().kind == TokenKind::kSemicolon) {
        Next();
        SkipNewlines();
      }
      if (AtEnd()) break;
      if (theory.rules.size() >= kMaxRulesPerTheory) {
        return ErrorAt(Peek(), "theory exceeds the maximum of " +
                                   std::to_string(kMaxRulesPerTheory) +
                                   " rules");
      }
      Result<Tgd> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      theory.rules.push_back(std::move(rule.value()));
      if (Peek().kind != TokenKind::kSemicolon &&
          Peek().kind != TokenKind::kNewline && !AtEnd()) {
        return ErrorAt(Peek(), "expected ';' or newline between rules");
      }
    }
    return theory;
  }

  Result<ConjunctiveQuery> ParseWholeQuery() {
    SkipNewlines();
    ConjunctiveQuery query;
    // Optional `name(v1,...,vk) :-` answer-variable header.  The header
    // name is arbitrary and is *not* interned as a predicate (so `q(x)`
    // and `q(x,y)` headers in the same vocabulary do not clash).
    size_t save = pos_;
    if (Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kLParen) {
      std::vector<TermId> header_vars;
      bool header_ok = true;
      Next();  // header name
      Next();  // '('
      if (Peek().kind != TokenKind::kRParen) {
        for (;;) {
          const Token& term = Peek();
          if (term.kind != TokenKind::kIdent) {
            header_ok = false;
            break;
          }
          Next();
          header_vars.push_back(IsVariableName(term.text)
                                    ? vocab_.Variable(term.text)
                                    : vocab_.Constant(term.text));
          if (Peek().kind == TokenKind::kComma) {
            Next();
            continue;
          }
          break;
        }
      }
      if (header_ok && Peek().kind == TokenKind::kRParen) {
        Next();
      } else {
        header_ok = false;
      }
      if (header_ok && Peek().kind == TokenKind::kTurnstile) {
        Next();
        SkipNewlines();
        for (TermId v : header_vars) {
          if (!vocab_.IsVariable(v)) {
            return Status::Error(
                "answer positions of a query must hold variables");
          }
          query.answer_vars.push_back(v);
        }
      } else {
        pos_ = save;  // Boolean query beginning with an atom.
      }
    }
    Result<std::vector<Atom>> atoms = ParseAtoms();
    if (!atoms.ok()) return atoms.status();
    query.atoms = std::move(atoms.value());
    SkipNewlines();
    if (!AtEnd()) return ErrorAt(Peek(), "trailing input after query");
    // Answer variables must occur in the body.
    for (TermId v : query.answer_vars) {
      bool found = false;
      for (const Atom& atom : query.atoms) {
        if (atom.ContainsTerm(v)) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Error("answer variable " + vocab_.TermToString(v) +
                             " does not occur in the query body");
      }
    }
    return query;
  }

  Result<FactSet> ParseWholeFacts() {
    SkipNewlines();
    FactSet facts;
    if (AtEnd()) return facts;
    Result<std::vector<Atom>> atoms = ParseAtoms();
    if (!atoms.ok()) return atoms.status();
    for (const Atom& atom : atoms.value()) {
      for (TermId t : atom.args) {
        if (vocab_.IsVariable(t)) {
          return Status::Error("fact contains variable " +
                               vocab_.TermToString(t));
        }
      }
      facts.Insert(atom);
    }
    SkipNewlines();
    if (!AtEnd()) return ErrorAt(Peek(), "trailing input after facts");
    return facts;
  }

 private:
  Vocabulary& vocab_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

template <typename T>
Result<T> WithTokens(Vocabulary& vocab, std::string_view text,
                     Result<T> (*run)(Parser&)) {
  Result<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(vocab, std::move(tokens.value()));
  return run(parser);
}

}  // namespace

Result<Tgd> ParseRule(Vocabulary& vocab, std::string_view text) {
  return WithTokens<Tgd>(vocab, text, +[](Parser& p) {
    p.SkipNewlines();
    Result<Tgd> rule = p.ParseOneRule();
    if (!rule.ok()) return rule;
    p.SkipNewlines();
    if (!p.AtEnd()) {
      return Result<Tgd>(Status::Error("trailing input after rule"));
    }
    return rule;
  });
}

Result<Theory> ParseTheory(Vocabulary& vocab, std::string_view text,
                           std::string name) {
  Result<std::vector<Token>> tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(vocab, std::move(tokens.value()));
  return parser.ParseWholeTheory(std::move(name));
}

Result<ConjunctiveQuery> ParseQuery(Vocabulary& vocab, std::string_view text) {
  return WithTokens<ConjunctiveQuery>(
      vocab, text, +[](Parser& p) { return p.ParseWholeQuery(); });
}

Result<FactSet> ParseFacts(Vocabulary& vocab, std::string_view text) {
  return WithTokens<FactSet>(vocab, text,
                             +[](Parser& p) { return p.ParseWholeFacts(); });
}

namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::Error("cannot open '" + path + "'");
  }
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(file);
  return contents;
}

}  // namespace

Result<Theory> LoadTheoryFile(Vocabulary& vocab, const std::string& path) {
  Result<std::string> contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  return ParseTheory(vocab, contents.value(), path);
}

Result<FactSet> LoadFactsFile(Vocabulary& vocab, const std::string& path) {
  Result<std::string> contents = ReadFile(path);
  if (!contents.ok()) return contents.status();
  // Atoms may be separated by newlines instead of commas: parse line by
  // line and merge.
  FactSet facts;
  std::string line;
  size_t start = 0;
  const std::string& text = contents.value();
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    line = text.substr(start, end - start);
    start = end + 1;
    // Strip comments and whitespace-only lines.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) {
      if (end == text.size()) break;
      continue;
    }
    Result<FactSet> parsed = ParseFacts(vocab, line);
    if (!parsed.ok()) return parsed.status();
    facts.InsertAll(parsed.value());
    if (end == text.size()) break;
  }
  return facts;
}

}  // namespace frontiers
