#ifndef FRONTIERS_NORMALIZE_FOREST_H_
#define FRONTIERS_NORMALIZE_FOREST_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/vocabulary.h"
#include "chase/chase.h"
#include "tgd/tgd.h"

namespace frontiers {

/// Section 13's taxonomy of chase atoms and the tree structure it induces.
///
/// For a theory over a binary signature the chase splits into input atoms,
/// *Datalog atoms* (produced by rules without existentials), and
/// *existential atoms*; existential atoms are *detached* (empty-frontier
/// rules - no terms shared with the past) or *sensible*.  Observation 64:
/// the sensible atoms form a forest over the terms, rooted at the input
/// constants and the detached terms, with out-degree bounded by the number
/// of existential rules.

/// Classification of one chase atom.
enum class AtomClass {
  kInput,       ///< depth 0
  kDatalog,     ///< produced by a Datalog rule
  kDetached,    ///< produced by an empty-frontier existential rule
  kSensible,    ///< produced by any other existential rule
};

/// The per-atom classification plus the S(t) forest.
struct ChaseForest {
  std::vector<AtomClass> atom_class;  // indexed like chase.facts.atoms()

  /// For each sensible atom: the root term of the tree it belongs to (an
  /// input constant or a detached term).
  std::unordered_map<uint32_t, TermId> tree_root_of_atom;

  /// Roots in first-seen order.
  std::vector<TermId> roots;

  /// Atoms (indices) of the tree S(t) rooted at `t`.
  std::vector<uint32_t> TreeAtoms(TermId root) const;

  /// True if every sensible atom lies in exactly one tree and the
  /// parent-child structure is acyclic with single parents (Observation
  /// 64's forest property); computed during construction and re-checkable.
  bool forest_ok = true;

  /// Maximal out-degree observed in the forest (Observation 64 bounds it
  /// by the number of existential rules).
  uint32_t max_out_degree = 0;

 private:
  friend ChaseForest BuildChaseForest(const Vocabulary&, const Theory&,
                                      const ChaseResult&);
  std::unordered_map<TermId, std::vector<uint32_t>> atoms_by_root_;
};

/// Builds the Section 13 forest from a provenance-tracked chase run of a
/// theory whose existential rules are frontier-one (all binary theories
/// qualify; footnote 37).  Requires `chase` to have been produced with
/// `track_provenance` (for rule attribution).
ChaseForest BuildChaseForest(const Vocabulary& vocab, const Theory& theory,
                             const ChaseResult& chase);

/// The number of distinct input atoms among the (connected) ancestors of
/// the tree S(root) - the quantity the crucial Lemma 77 bounds by `M` for
/// normalized theories.
size_t TreeAncestorInputs(const Vocabulary& vocab, const ChaseResult& chase,
                          const ChaseForest& forest, TermId root);

}  // namespace frontiers

#endif  // FRONTIERS_NORMALIZE_FOREST_H_
