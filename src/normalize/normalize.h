#ifndef FRONTIERS_NORMALIZE_NORMALIZE_H_
#define FRONTIERS_NORMALIZE_NORMALIZE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/vocabulary.h"
#include "rewriting/rewriter.h"
#include "tgd/conjunctive_query.h"
#include "tgd/tgd.h"

namespace frontiers {

/// The Appendix A normalization `T -> T_NF` (Definitions 67-68 and the
/// three-step NORMALIZATION ALGORITHM).
///
/// Purpose (Section 13): the naive "crucial lemma" (Lemma 65) fails
/// because an existential rule may consume facts *disconnected* from its
/// frontier (Example 66), letting one chase tree claim unboundedly many
/// ancestors.  Normalization (1) replaces every existential rule's body by
/// its full rewriting set under T, then (2) separates the connected part
/// of each body from the rest, encapsulating the rest behind a fresh
/// *nullary* predicate `M_phi`, and (3) rewrites the bodies of the rules
/// proving those nullary predicates.  The result satisfies
/// `Ch_exists(T, D) = Ch_exists(T_NF, D)` (Lemma 70), and connected
/// ancestor sets in T_NF chases are bounded (Lemma 77).
struct NormalizationResult {
  /// `T_NF = T_II  union  T_III`.
  Theory normalized;
  /// Intermediate stages, for inspection and the experiment reports.
  Theory t_i;    // bodies of existential rules rewritten
  Theory t_ii;   // bodies separated; the only existential rules of T_NF
  Theory t_iii;  // nullary-producing Datalog rules (bodies rewritten)
  /// The Datalog part of the *original* theory; Corollary 76 recovers
  /// `Ch(T, D)` as `Ch(T_DL, Ch_exists(T_NF, D) u D)`.
  Theory original_datalog;
  /// For each nullary predicate introduced, the Boolean CQ it encodes.
  std::unordered_map<PredicateId, ConjunctiveQuery> nullary_meaning;
};

/// Runs the normalization algorithm.  Requires the theory to be BDD enough
/// in practice: every body rewriting must converge within
/// `rewriting_options`; a budget blow-up or an unsupported rule shape
/// (multi-head, or frontier variables spread over several body components)
/// yields an error status.
Result<NormalizationResult> NormalizeTheory(
    Vocabulary& vocab, const Theory& theory,
    const RewritingOptions& rewriting_options = {});

}  // namespace frontiers

#endif  // FRONTIERS_NORMALIZE_NORMALIZE_H_
