#ifndef FRONTIERS_NORMALIZE_ANCESTORS_H_
#define FRONTIERS_NORMALIZE_ANCESTORS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/vocabulary.h"
#include "chase/chase.h"

namespace frontiers {

/// Parent/ancestor functions over chase provenance (Section 13).
///
/// A *parent function* assigns each derived atom one of its derivations;
/// the induced *ancestor function* maps an atom to the set of input facts
/// reachable through parents.  The choice among derivations is free - the
/// point of Example 66 is that an adversarial choice blows ancestor sets
/// up under T, while after normalization the *connected* ancestor sets
/// (ignoring nullary parents) stay bounded (crucial Lemma 77).

/// Picks which derivation of an atom acts as its parent set.  Input: the
/// atom's index and its recorded derivations (non-empty).  Must return an
/// index into that vector.
using DerivationChooser =
    std::function<size_t(uint32_t atom_index,
                         const std::vector<Derivation>& derivations)>;

/// Always the first recorded derivation (the chase's own order).
DerivationChooser FirstDerivation();

/// Rotates through the recorded derivations by atom index - a simple
/// adversary that spreads parent choices, reproducing Example 66's
/// unbounded ancestor sets.
DerivationChooser RotatingDerivation();

/// The ancestor set of `atom_index`: indices of *input* atoms (depth 0)
/// reachable through the chosen parents.  Requires the chase to have run
/// with `record_all_derivations` (or `track_provenance` for
/// FirstDerivation).  If `connected_only` is set, parents that are nullary
/// atoms are skipped - the `cpar`/`canc` of Section 13.
std::vector<uint32_t> AncestorInputs(const Vocabulary& vocab,
                                     const ChaseResult& chase,
                                     uint32_t atom_index,
                                     const DerivationChooser& chooser,
                                     bool connected_only = false);

/// Maximum ancestor-set size over all atoms of the chase - the quantity
/// bounded by Lemma 77 (for connected ancestors under T_NF) and unbounded
/// in Example 66 (under T with a rotating chooser).
size_t MaxAncestorSetSize(const Vocabulary& vocab, const ChaseResult& chase,
                          const DerivationChooser& chooser,
                          bool connected_only = false);

}  // namespace frontiers

#endif  // FRONTIERS_NORMALIZE_ANCESTORS_H_
