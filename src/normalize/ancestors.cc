#include "normalize/ancestors.h"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace frontiers {

DerivationChooser FirstDerivation() {
  return [](uint32_t, const std::vector<Derivation>&) -> size_t { return 0; };
}

DerivationChooser RotatingDerivation() {
  return [](uint32_t atom_index,
            const std::vector<Derivation>& derivations) -> size_t {
    return atom_index % derivations.size();
  };
}

namespace {

// Derivations of an atom, from whichever provenance mode was recorded.
const std::vector<Derivation>* DerivationsOf(const ChaseResult& chase,
                                             uint32_t atom_index,
                                             std::vector<Derivation>* scratch) {
  if (!chase.all_derivations.empty()) {
    const std::vector<Derivation>& all = chase.all_derivations[atom_index];
    if (!all.empty()) return &all;
    return nullptr;
  }
  if (!chase.first_derivation.empty() &&
      chase.first_derivation[atom_index].has_value()) {
    scratch->assign(1, *chase.first_derivation[atom_index]);
    return scratch;
  }
  return nullptr;
}

void Collect(const Vocabulary& vocab, const ChaseResult& chase,
             uint32_t atom_index, const DerivationChooser& chooser,
             bool connected_only, std::set<uint32_t>* inputs,
             std::set<uint32_t>* visited) {
  if (!visited->insert(atom_index).second) return;
  if (chase.depth[atom_index] == 0) {
    inputs->insert(atom_index);
    return;
  }
  std::vector<Derivation> scratch;
  const std::vector<Derivation>* derivations =
      DerivationsOf(chase, atom_index, &scratch);
  if (derivations == nullptr) return;  // no recorded provenance
  const Derivation& chosen =
      (*derivations)[chooser(atom_index, *derivations) % derivations->size()];
  for (uint32_t parent : chosen.parents) {
    if (connected_only &&
        vocab.PredicateArity(chase.facts.atoms()[parent].predicate) == 0) {
      continue;
    }
    Collect(vocab, chase, parent, chooser, connected_only, inputs, visited);
  }
}

}  // namespace

std::vector<uint32_t> AncestorInputs(const Vocabulary& vocab,
                                     const ChaseResult& chase,
                                     uint32_t atom_index,
                                     const DerivationChooser& chooser,
                                     bool connected_only) {
  std::set<uint32_t> inputs, visited;
  Collect(vocab, chase, atom_index, chooser, connected_only, &inputs,
          &visited);
  return {inputs.begin(), inputs.end()};
}

size_t MaxAncestorSetSize(const Vocabulary& vocab, const ChaseResult& chase,
                          const DerivationChooser& chooser,
                          bool connected_only) {
  size_t max = 0;
  for (uint32_t i = 0; i < chase.facts.size(); ++i) {
    size_t size =
        AncestorInputs(vocab, chase, i, chooser, connected_only).size();
    max = std::max(max, size);
  }
  return max;
}

}  // namespace frontiers
