#include "normalize/forest.h"

#include <unordered_set>

#include "normalize/ancestors.h"
#include "tgd/classify.h"

namespace frontiers {

std::vector<uint32_t> ChaseForest::TreeAtoms(TermId root) const {
  auto it = atoms_by_root_.find(root);
  if (it == atoms_by_root_.end()) return {};
  return it->second;
}

ChaseForest BuildChaseForest(const Vocabulary& /*vocab*/, const Theory& theory,
                             const ChaseResult& chase) {
  ChaseForest forest;
  const size_t n = chase.facts.size();
  forest.atom_class.assign(n, AtomClass::kInput);

  // Classify atoms by the rule of their first derivation.
  for (uint32_t i = 0; i < n; ++i) {
    if (chase.depth[i] == 0) continue;
    if (chase.first_derivation.empty() ||
        !chase.first_derivation[i].has_value()) {
      forest.forest_ok = false;  // provenance missing
      continue;
    }
    const Tgd& rule = theory.rules[chase.first_derivation[i]->rule_index];
    if (IsDatalogRule(rule)) {
      forest.atom_class[i] = AtomClass::kDatalog;
    } else if (IsDetachedRule(rule)) {
      forest.atom_class[i] = AtomClass::kDetached;
    } else {
      forest.atom_class[i] = AtomClass::kSensible;
    }
  }

  // Terms born by detached atoms.
  std::unordered_set<TermId> detached_terms;
  for (const auto& [term, birth] : chase.birth_atom) {
    if (forest.atom_class[birth] == AtomClass::kDetached) {
      detached_terms.insert(term);
    }
  }

  // Parent term of each sensible-born term: the frontier term of its
  // birth atom (frontier-one theories have exactly one).
  auto parent_of = [&](TermId t) -> TermId {
    auto birth = chase.birth_atom.find(t);
    if (birth == chase.birth_atom.end()) return kNoTerm;  // input term
    const Atom& atom = chase.facts.atoms()[birth->second];
    for (TermId other : atom.args) {
      // The parent is any argument that was *not* born here.
      auto other_birth = chase.birth_atom.find(other);
      if (other == t) continue;
      if (other_birth == chase.birth_atom.end() ||
          other_birth->second != birth->second) {
        return other;
      }
    }
    return kNoTerm;  // all arguments born here: detached shape
  };

  // Root of the tree containing a term (memoized walk up the parents).
  std::unordered_map<TermId, TermId> root_of;
  std::function<TermId(TermId)> find_root = [&](TermId t) -> TermId {
    auto cached = root_of.find(t);
    if (cached != root_of.end()) return cached->second;
    TermId root;
    auto birth = chase.birth_atom.find(t);
    if (birth == chase.birth_atom.end() || detached_terms.count(t) > 0) {
      root = t;  // input constant or detached term
    } else {
      TermId parent = parent_of(t);
      root = parent == kNoTerm ? t : find_root(parent);
    }
    root_of.emplace(t, root);
    return root;
  };

  std::unordered_set<TermId> seen_roots;
  std::unordered_map<TermId, uint32_t> out_degree;
  for (uint32_t i = 0; i < n; ++i) {
    if (forest.atom_class[i] != AtomClass::kSensible) continue;
    // The child is the argument born by this atom; Observation 64 needs
    // exactly one (frontier-one existential rules).
    const Atom& atom = chase.facts.atoms()[i];
    TermId child = kNoTerm;
    int children = 0;
    for (TermId t : atom.args) {
      auto birth = chase.birth_atom.find(t);
      if (birth != chase.birth_atom.end() && birth->second == i) {
        child = t;
        ++children;
      }
    }
    if (children != 1) {
      forest.forest_ok = false;
      continue;
    }
    TermId parent = parent_of(child);
    if (parent == kNoTerm) {
      forest.forest_ok = false;
      continue;
    }
    ++out_degree[parent];
    TermId root = find_root(child);
    forest.tree_root_of_atom.emplace(i, root);
    forest.atoms_by_root_[root].push_back(i);
    if (seen_roots.insert(root).second) forest.roots.push_back(root);
  }
  for (const auto& [_, degree] : out_degree) {
    forest.max_out_degree = std::max(forest.max_out_degree, degree);
  }
  return forest;
}

size_t TreeAncestorInputs(const Vocabulary& vocab, const ChaseResult& chase,
                          const ChaseForest& forest, TermId root) {
  std::unordered_set<uint32_t> inputs;
  for (uint32_t atom_index : forest.TreeAtoms(root)) {
    for (uint32_t input : AncestorInputs(vocab, chase, atom_index,
                                         FirstDerivation(),
                                         /*connected_only=*/true)) {
      inputs.insert(input);
    }
  }
  return inputs.size();
}

}  // namespace frontiers
