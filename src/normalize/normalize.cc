#include "normalize/normalize.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_set>

#include "tgd/classify.h"

namespace frontiers {

namespace {

// Canonical name suffix for a Boolean CQ: atoms rendered with variables
// numbered by first occurrence under a sorted atom order.
std::string CanonicalBooleanKey(const Vocabulary& vocab,
                                const std::vector<Atom>& atoms) {
  // First render with variable placeholders to fix the atom order.
  std::vector<size_t> order(atoms.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto rough = [&](const Atom& atom) {
    std::string s = vocab.PredicateName(atom.predicate) + "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) s += ",";
      s += vocab.IsVariable(atom.args[i]) ? "?" : vocab.TermToString(
                                                      atom.args[i]);
    }
    return s + ")";
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rough(atoms[a]) < rough(atoms[b]);
  });
  std::unordered_map<TermId, int> naming;
  int next = 0;
  std::string key;
  for (size_t idx : order) {
    const Atom& atom = atoms[idx];
    key += vocab.PredicateName(atom.predicate) + "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) key += ",";
      TermId t = atom.args[i];
      if (vocab.IsVariable(t)) {
        auto it = naming.find(t);
        if (it == naming.end()) it = naming.emplace(t, next++).first;
        key += "v" + std::to_string(it->second);
      } else {
        key += vocab.TermToString(t);
      }
    }
    key += ")";
  }
  return key;
}

// Splits body atoms into the connected component containing the frontier
// variables and the rest.  Fails if frontier variables span several
// components.
Status SplitBody(const Vocabulary& /*vocab*/, const Tgd& rule,
                 std::vector<Atom>* connected, std::vector<Atom>* rest) {
  // Union-find over terms.
  std::unordered_map<TermId, TermId> parent;
  std::function<TermId(TermId)> find = [&](TermId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Atom& atom : rule.body) {
    for (TermId t : atom.args) {
      if (parent.find(t) == parent.end()) parent[t] = t;
    }
    for (size_t i = 1; i < atom.args.size(); ++i) {
      TermId a = find(atom.args[0]), b = find(atom.args[i]);
      if (a != b) parent[a] = b;
    }
  }
  TermId frontier_root = kNoTerm;
  for (TermId v : rule.frontier) {
    TermId root = find(v);
    if (frontier_root == kNoTerm) {
      frontier_root = root;
    } else if (root != frontier_root) {
      return Status::Error("frontier variables of rule '" + rule.name +
                           "' span several body components");
    }
  }
  for (const Atom& atom : rule.body) {
    bool in_frontier_component =
        frontier_root != kNoTerm && !atom.args.empty() &&
        find(atom.args[0]) == frontier_root;
    // Zero-ary atoms in a body (none expected pre-normalization) go to
    // the rest.
    if (in_frontier_component) {
      connected->push_back(atom);
    } else {
      rest->push_back(atom);
    }
  }
  if (frontier_root == kNoTerm && !rule.body.empty()) {
    // Empty frontier (detached rule): treat the whole body as "rest" and
    // the connected part as empty.
    connected->clear();
    *rest = rule.body;
  }
  return Status::Ok();
}

std::string RuleKey(const Vocabulary& vocab, const Tgd& rule) {
  std::string key = CanonicalBooleanKey(vocab, rule.body) + "=>";
  key += CanonicalBooleanKey(vocab, rule.head);
  return key;
}

}  // namespace

Result<NormalizationResult> NormalizeTheory(
    Vocabulary& vocab, const Theory& theory,
    const RewritingOptions& rewriting_options) {
  NormalizationResult out;
  out.original_datalog = DatalogPart(theory);
  out.original_datalog.name = theory.name + "_DL";
  out.t_i.name = theory.name + "_I";
  out.t_ii.name = theory.name + "_II";
  out.t_iii.name = theory.name + "_III";

  Rewriter rewriter(vocab, theory);

  // ---- STEP ONE: T_I = union of Rew(rho) over existential rules. ----
  for (const Tgd& rule : theory.rules) {
    if (IsDatalogRule(rule)) continue;
    if (rule.head.size() > 1) {
      return Status::Error("normalization requires single-head rules");
    }
    if (rule.body.empty()) {
      // Nothing to rewrite; pins/loop-style rules pass through.
      out.t_i.rules.push_back(rule);
      continue;
    }
    ConjunctiveQuery body_query;
    body_query.atoms = rule.body;
    body_query.answer_vars = rule.frontier;
    RewritingResult rew = rewriter.Rewrite(body_query, rewriting_options);
    if (rew.status != RewritingStatus::kConverged) {
      return Status::Error("body rewriting of rule '" + rule.name +
                           "' did not converge (theory not BDD enough "
                           "for this budget)");
    }
    int index = 0;
    for (const ConjunctiveQuery& disjunct : rew.queries) {
      out.t_i.rules.push_back(MakeTgd(
          vocab, disjunct.atoms, rule.head, rule.existential_vars,
          rule.name + "_rw" + std::to_string(index++)));
    }
  }

  // ---- STEP TWO: T_II = separated rules. ----
  // Rest-bodies keyed canonically so equal bodies share one predicate.
  std::map<std::string, PredicateId> nullary_by_key;
  std::map<PredicateId, std::vector<Atom>> nullary_bodies;
  PredicateId m_empty = vocab.AddPredicate("M_empty", 0);
  bool used_m_empty = false;
  std::set<std::string> seen_rules;
  for (const Tgd& rule : out.t_i.rules) {
    std::vector<Atom> connected, rest;
    Status split = SplitBody(vocab, rule, &connected, &rest);
    if (!split.ok()) return split;
    PredicateId nullary;
    if (rest.empty()) {
      nullary = m_empty;
      used_m_empty = true;
    } else {
      std::string key = CanonicalBooleanKey(vocab, rest);
      auto it = nullary_by_key.find(key);
      if (it == nullary_by_key.end()) {
        nullary = vocab.AddPredicate(
            "M_" + std::to_string(nullary_by_key.size()), 0);
        nullary_by_key.emplace(std::move(key), nullary);
        nullary_bodies.emplace(nullary, rest);
      } else {
        nullary = it->second;
      }
    }
    std::vector<Atom> new_body = connected;
    new_body.push_back(Atom(nullary, {}));
    Tgd separated = MakeTgd(vocab, new_body, rule.head,
                            rule.existential_vars, rule.name + "_sep");
    if (seen_rules.insert(RuleKey(vocab, separated)).second) {
      out.t_ii.rules.push_back(std::move(separated));
    }
    ConjunctiveQuery meaning;
    meaning.atoms = rest;
    out.nullary_meaning.emplace(nullary, std::move(meaning));
  }

  // ---- STEP THREE: T_III = Rew(sep_M(rho)). ----
  std::set<std::string> seen_nullary_rules;
  if (used_m_empty) {
    Tgd trivial = MakeTgd(vocab, {}, {Atom(m_empty, {})}, {}, "m_empty");
    out.t_iii.rules.push_back(std::move(trivial));
  }
  for (const auto& [nullary, rest] : nullary_bodies) {
    ConjunctiveQuery body_query;
    body_query.atoms = rest;  // Boolean: all variables existential
    RewritingResult rew = rewriter.Rewrite(body_query, rewriting_options);
    if (rew.status != RewritingStatus::kConverged) {
      return Status::Error(
          "nullary body rewriting did not converge within budget");
    }
    int index = 0;
    for (const ConjunctiveQuery& disjunct : rew.queries) {
      Tgd produced =
          MakeTgd(vocab, disjunct.atoms, {Atom(nullary, {})}, {},
                  vocab.PredicateName(nullary) + "_rw" +
                      std::to_string(index++));
      if (seen_nullary_rules.insert(RuleKey(vocab, produced)).second) {
        out.t_iii.rules.push_back(std::move(produced));
      }
    }
  }

  out.normalized.name = theory.name + "_NF";
  out.normalized.rules = out.t_ii.rules;
  for (const Tgd& rule : out.t_iii.rules) {
    out.normalized.rules.push_back(rule);
  }
  return out;
}

}  // namespace frontiers
