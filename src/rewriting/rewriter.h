#ifndef FRONTIERS_REWRITING_REWRITER_H_
#define FRONTIERS_REWRITING_REWRITER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/vocabulary.h"
#include "tgd/conjunctive_query.h"
#include "tgd/tgd.h"

namespace frontiers {

/// Outcome of a rewriting run.
enum class RewritingStatus {
  /// The saturation drained: the returned set is the complete, minimal
  /// rewriting `rew(psi)` of Theorem 1, certifying the pair (theory, query)
  /// behaves as BDD on this query.
  kConverged,
  /// A budget was hit first.  BDD is undecidable (Section 1), so this is
  /// the honest "don't know / probably not BDD for this query" answer; the
  /// returned set is sound (every disjunct is a correct rewriting) but may
  /// be incomplete.
  kBudgetExhausted,
  /// The theory contains a rule this engine does not handle (multi-head).
  /// The paper's multi-head theory T_d has a dedicated procedure in the
  /// `frontier` module; its catalog single-head encoding goes through here.
  kUnsupportedRule,
};

/// Budgets for the saturation loop.
struct RewritingOptions {
  /// Maximum number of CQs ever admitted to the rewriting set.
  size_t max_queries = 4000;
  /// Candidate disjuncts larger than this are dropped (and the run is
  /// marked kBudgetExhausted, since dropping loses completeness).
  size_t max_atoms_per_query = 64;
  /// Maximum number of worklist expansions.
  uint32_t max_iterations = 20000;
};

/// The result of rewriting one CQ.
struct RewritingResult {
  /// The rewriting set: pairwise incomparable CQs (no disjunct contains
  /// another, per Theorem 1's minimality condition), each minimized.
  std::vector<ConjunctiveQuery> queries;
  RewritingStatus status = RewritingStatus::kConverged;
  /// True if some disjunct degenerated to the empty query: the original
  /// query is entailed by every instance with the relevant pattern
  /// trivially (only possible with empty-body rules).
  bool always_true = false;
  size_t iterations = 0;
  size_t candidates_generated = 0;

  /// The paper's `rs_T(psi)`: the maximal number of atoms in a disjunct.
  size_t MaxDisjunctSize() const;
};

/// UCQ rewriting by *piece unification* (backward application of rules),
/// the standard sound-and-complete procedure for single-head existential
/// rules.  This realizes the `rew(psi)` of Theorem 1 whenever it
/// converges; together with the chase it gives both directions of
/// `Ch(T,D) |= psi  <=>  D |= rew(psi)`.
///
/// One extension beyond the textbook algorithm is needed for the paper's
/// pins-style rules (`true -> exists z R(x,z)`): a backward step can leave
/// an answer variable constrained only by "is in the active domain", which
/// a CQ cannot say.  Such disjuncts are expanded into one disjunct per
/// (predicate, position) of the signature, planting the dangling variable
/// in a fresh atom — a finite, equivalent UCQ.
class Rewriter {
 public:
  Rewriter(Vocabulary& vocab, const Theory& theory);

  /// Rewrites `query` under the engine's theory.
  RewritingResult Rewrite(const ConjunctiveQuery& query,
                          const RewritingOptions& options = {}) const;

  /// `rs_T^{at}`-style helper: rewrites the atomic query `P(x1,...,xk)`
  /// with all variables free.
  RewritingResult RewriteAtomicQuery(PredicateId predicate,
                                     const RewritingOptions& options = {});

 private:
  Vocabulary& vocab_;
  Theory theory_;
  bool has_multi_head_ = false;
  /// Predicates of the theory, for active-domain expansion.
  std::vector<PredicateId> signature_;
};

}  // namespace frontiers

#endif  // FRONTIERS_REWRITING_REWRITER_H_
