#include "rewriting/rewriter.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "hom/query_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tgd/substitution.h"

namespace frontiers {

size_t RewritingResult::MaxDisjunctSize() const {
  size_t max = 0;
  for (const ConjunctiveQuery& q : queries) max = std::max(max, q.size());
  return max;
}

namespace {

// Small union-find over TermIds.
class UnionFind {
 public:
  TermId Find(TermId t) {
    auto it = parent_.find(t);
    if (it == parent_.end()) {
      parent_.emplace(t, t);
      return t;
    }
    TermId root = t;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[t] != root) {
      TermId next = parent_[t];
      parent_[t] = root;
      t = next;
    }
    return root;
  }
  void Unite(TermId a, TermId b) {
    TermId ra = Find(a), rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }
  // All equivalence classes with at least one member.
  std::unordered_map<TermId, std::vector<TermId>> Classes() {
    std::unordered_map<TermId, std::vector<TermId>> classes;
    for (const auto& [t, _] : parent_) classes[Find(t)].push_back(t);
    return classes;
  }

 private:
  std::unordered_map<TermId, TermId> parent_;
};

}  // namespace

Rewriter::Rewriter(Vocabulary& vocab, const Theory& theory)
    : vocab_(vocab), theory_(theory) {
  std::unordered_set<PredicateId> preds;
  for (const Tgd& rule : theory_.rules) {
    if (rule.head.size() > 1) has_multi_head_ = true;
    for (const Atom& atom : rule.body) preds.insert(atom.predicate);
    for (const Atom& atom : rule.head) preds.insert(atom.predicate);
  }
  signature_.assign(preds.begin(), preds.end());
  std::sort(signature_.begin(), signature_.end());
}

RewritingResult Rewriter::Rewrite(const ConjunctiveQuery& query,
                                  const RewritingOptions& options) const {
  obs::Span span("rewriting.rewrite", "rewriting");
  RewritingResult result;
  if (has_multi_head_) {
    result.status = RewritingStatus::kUnsupportedRule;
    result.queries.push_back(MinimizeQuery(vocab_, query));
    return result;
  }

  struct Entry {
    ConjunctiveQuery q;
    bool alive = true;
    bool expanded = false;
  };
  std::vector<Entry> set;
  set.push_back({MinimizeQuery(vocab_, query), true, false});

  bool truncated = false;

  // Admits `candidate` into the set unless it is subsumed; retires entries
  // it subsumes.  Returns true if admitted.
  auto admit = [&](const ConjunctiveQuery& raw) {
    ++result.candidates_generated;
    if (raw.atoms.empty()) {
      if (raw.answer_vars.empty()) result.always_true = true;
      return false;
    }
    ConjunctiveQuery candidate = MinimizeQuery(vocab_, raw);
    if (candidate.size() > options.max_atoms_per_query) {
      truncated = true;
      return false;
    }
    for (const Entry& entry : set) {
      if (entry.alive && Contains(vocab_, entry.q, candidate)) {
        return false;  // an at-least-as-general disjunct already present
      }
    }
    for (Entry& entry : set) {
      if (entry.alive && Contains(vocab_, candidate, entry.q)) {
        entry.alive = false;  // candidate is strictly more general
      }
    }
    if (set.size() >= options.max_queries) {
      truncated = true;
      return false;
    }
    set.push_back({std::move(candidate), true, false});
    return true;
  };

  // Expands dangling answer variables (constrained only by active-domain
  // membership after a backward pins-step) into per-(predicate, position)
  // disjuncts, then admits everything.
  std::function<void(const ConjunctiveQuery&)> admit_expanding =
      [&](const ConjunctiveQuery& q) {
        std::unordered_set<TermId> present;
        for (const Atom& atom : q.atoms) {
          for (TermId t : atom.args) present.insert(t);
        }
        TermId dangling = kNoTerm;
        for (TermId v : q.answer_vars) {
          // Answer-tuple constants (from "x = c" unifiers) are fixed values,
          // not dangling variables.
          if (!vocab_.IsVariable(v)) continue;
          if (present.count(v) == 0) {
            dangling = v;
            break;
          }
        }
        if (dangling == kNoTerm) {
          admit(q);
          return;
        }
        for (PredicateId pred : signature_) {
          uint32_t arity = vocab_.PredicateArity(pred);
          for (uint32_t pos = 0; pos < arity; ++pos) {
            ConjunctiveQuery expanded = q;
            Atom atom;
            atom.predicate = pred;
            for (uint32_t i = 0; i < arity; ++i) {
              atom.args.push_back(i == pos ? dangling
                                           : vocab_.FreshVariable("adom"));
            }
            expanded.atoms.push_back(std::move(atom));
            admit_expanding(expanded);  // recurse: more may dangle
          }
        }
      };

  std::unordered_set<TermId> answer_set(query.answer_vars.begin(),
                                        query.answer_vars.end());

  // Generates all one-step backward rewritings of `q` with `rule`.
  auto expand_with_rule = [&](const ConjunctiveQuery& q, const Tgd& rule) {
    const Atom& head = rule.head[0];

    // Freshen the rule's variables so they cannot clash with q's.
    Substitution freshen;
    auto fresh = [&](TermId v) {
      auto it = freshen.find(v);
      if (it == freshen.end()) {
        it = freshen.emplace(v, vocab_.FreshVariable("rw")).first;
      }
      return it->second;
    };
    Atom fresh_head = head;
    for (TermId& t : fresh_head.args) {
      if (vocab_.IsVariable(t)) t = fresh(t);
    }
    std::vector<Atom> fresh_body;
    for (const Atom& atom : rule.body) {
      Atom copy = atom;
      for (TermId& t : copy.args) {
        if (vocab_.IsVariable(t)) t = fresh(t);
      }
      fresh_body.push_back(std::move(copy));
    }
    std::unordered_set<TermId> fresh_existentials;
    for (TermId v : rule.existential_vars) {
      fresh_existentials.insert(fresh(v));
    }
    std::unordered_set<TermId> fresh_universals;
    for (TermId v : rule.head_universal_vars) {
      fresh_universals.insert(fresh(v));
    }

    // Candidate piece atoms: q-atoms with the head's predicate.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < q.atoms.size(); ++i) {
      if (q.atoms[i].predicate == head.predicate) candidates.push_back(i);
    }
    if (candidates.empty()) return;
    // Enumerate non-empty subsets.  Queries in this codebase are small; a
    // hard cap keeps pathological inputs from exploding (the run is then
    // marked as truncated).
    if (candidates.size() > 12) {
      truncated = true;
      candidates.resize(12);
    }
    const size_t subset_count = static_cast<size_t>(1) << candidates.size();

    for (size_t mask = 1; mask < subset_count; ++mask) {
      std::vector<size_t> piece;
      for (size_t b = 0; b < candidates.size(); ++b) {
        if (mask & (static_cast<size_t>(1) << b)) {
          piece.push_back(candidates[b]);
        }
      }
      std::unordered_set<size_t> piece_set(piece.begin(), piece.end());

      // Terms occurring in q outside the piece.
      std::unordered_set<TermId> outside;
      for (size_t i = 0; i < q.atoms.size(); ++i) {
        if (piece_set.count(i) > 0) continue;
        for (TermId t : q.atoms[i].args) outside.insert(t);
      }

      UnionFind uf;
      for (size_t i : piece) {
        const Atom& atom = q.atoms[i];
        for (size_t pos = 0; pos < atom.args.size(); ++pos) {
          uf.Unite(atom.args[pos], fresh_head.args[pos]);
        }
      }

      // Validate classes and pick representatives.
      bool valid = true;
      Substitution rep;
      for (auto& [root, members] : uf.Classes()) {
        (void)root;
        TermId constant = kNoTerm;
        TermId answer = kNoTerm;
        TermId qvar = kNoTerm;
        TermId universal = kNoTerm;
        int n_constants = 0, n_answers = 0, n_existentials = 0;
        bool has_outside_qvar = false;
        for (TermId t : members) {
          if (!vocab_.IsVariable(t)) {
            if (constant != t) ++n_constants;
            constant = t;
          } else if (fresh_existentials.count(t) > 0) {
            ++n_existentials;
          } else if (fresh_universals.count(t) > 0) {
            // Freshened universal head variable.  (Original rule variables
            // never appear here: fresh_head replaced them all, so classes
            // only ever contain fresh rule variables and q-terms.)
            universal = t;
          } else if (answer_set.count(t) > 0) {
            ++n_answers;
            // Deterministic representative when the unifier merges several
            // answer variables.
            if (answer == kNoTerm || t < answer) answer = t;
          } else {
            qvar = t;
            if (outside.count(t) > 0) has_outside_qvar = true;
          }
        }
        // A freshened universal could also be spotted via fresh_universals;
        // body-only variables never occur in the head so they never join a
        // class here.
        if (n_constants > 1) {
          valid = false;
          break;
        }
        if (n_existentials > 0) {
          // Existential classes must consist of the existential plus
          // query variables local to the piece.
          if (n_existentials > 1 || constant != kNoTerm ||
              answer != kNoTerm || universal != kNoTerm ||
              has_outside_qvar) {
            valid = false;
            break;
          }
          continue;  // members vanish with the piece; no representative
        }
        // Unifiers that equate answer variables with each other ("x = y")
        // or with a constant ("x = c") stay expressible: the representative
        // is substituted into the answer tuple below, yielding a CQ with a
        // repeated answer variable (or an answer constant).  Dropping these
        // unifiers instead loses certain answers while still reporting
        // convergence (found by the torture oracle, seed 12).
        TermId chosen = constant != kNoTerm  ? constant
                        : answer != kNoTerm  ? answer
                        : qvar != kNoTerm    ? qvar
                                             : universal;
        for (TermId t : members) {
          if (t != chosen) rep.emplace(t, chosen);
        }
      }
      if (!valid) continue;

      // Assemble the rewriting: rep(body) + rep(q minus piece).
      ConjunctiveQuery rewritten;
      rewritten.answer_vars.reserve(q.answer_vars.size());
      for (TermId v : q.answer_vars) {
        rewritten.answer_vars.push_back(Apply(rep, v));
      }
      for (const Atom& atom : fresh_body) {
        rewritten.atoms.push_back(Apply(rep, atom));
      }
      for (size_t i = 0; i < q.atoms.size(); ++i) {
        if (piece_set.count(i) == 0) {
          rewritten.atoms.push_back(Apply(rep, q.atoms[i]));
        }
      }
      admit_expanding(rewritten);
    }
  };

  // Saturation loop.
  size_t cursor = 0;
  while (result.iterations < options.max_iterations) {
    // Find the next live, unexpanded entry.
    while (cursor < set.size() &&
           (!set[cursor].alive || set[cursor].expanded)) {
      ++cursor;
    }
    if (cursor == set.size()) {
      // Entries admitted earlier may sit before the cursor; rescan once.
      bool pending = false;
      for (size_t i = 0; i < set.size(); ++i) {
        if (set[i].alive && !set[i].expanded) {
          cursor = i;
          pending = true;
          break;
        }
      }
      if (!pending) break;
    }
    Entry& entry = set[cursor];
    entry.expanded = true;
    ++result.iterations;
    ConjunctiveQuery current = entry.q;  // copy: `set` may reallocate
    for (const Tgd& rule : theory_.rules) {
      expand_with_rule(current, rule);
    }
  }

  bool drained = true;
  for (const Entry& entry : set) {
    if (entry.alive && !entry.expanded) drained = false;
  }
  for (Entry& entry : set) {
    if (entry.alive) result.queries.push_back(std::move(entry.q));
  }
  result.status = (drained && !truncated) ? RewritingStatus::kConverged
                                          : RewritingStatus::kBudgetExhausted;

  // Publish run totals under `frontiers.rewriting.*` (DESIGN.md §7).
  obs::Registry& reg = obs::DefaultRegistry();
  reg.GetCounter("frontiers.rewriting.runs").Add();
  reg.GetCounter("frontiers.rewriting.iterations").Add(result.iterations);
  reg.GetCounter("frontiers.rewriting.candidates")
      .Add(result.candidates_generated);
  reg.GetCounter("frontiers.rewriting.disjuncts").Add(result.queries.size());
  if (result.status == RewritingStatus::kBudgetExhausted) {
    reg.GetCounter("frontiers.rewriting.budget_exhausted").Add();
    obs::TraceInstant("rewriting.budget_exhausted", "rewriting");
  }
  return result;
}

RewritingResult Rewriter::RewriteAtomicQuery(PredicateId predicate,
                                             const RewritingOptions& options) {
  ConjunctiveQuery query;
  Atom atom;
  atom.predicate = predicate;
  const uint32_t arity = vocab_.PredicateArity(predicate);
  for (uint32_t i = 0; i < arity; ++i) {
    TermId v = vocab_.FreshVariable("at");
    atom.args.push_back(v);
    query.answer_vars.push_back(v);
  }
  query.atoms.push_back(std::move(atom));
  return Rewrite(query, options);
}

}  // namespace frontiers
