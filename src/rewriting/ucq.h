#ifndef FRONTIERS_REWRITING_UCQ_H_
#define FRONTIERS_REWRITING_UCQ_H_

#include <string>
#include <vector>

#include "base/fact_set.h"
#include "base/vocabulary.h"
#include "tgd/conjunctive_query.h"

namespace frontiers {

/// A union of conjunctive queries (Section 2).  This is the shape of every
/// rewriting (Theorem 1); the type bundles the disjunct list with the
/// evaluation and maintenance operations the experiments kept re-rolling.
struct Ucq {
  std::vector<ConjunctiveQuery> disjuncts;
  /// A UCQ that is true on every instance (produced by rewritings under
  /// empty-body rules); disjuncts are then irrelevant.
  bool always_true = false;

  /// Number of disjuncts.
  size_t size() const { return disjuncts.size(); }

  /// The maximal number of atoms in a disjunct (the paper's `rs`).
  size_t MaxDisjunctSize() const;
};

/// True if some disjunct holds on `facts` under `answer` (all disjuncts
/// must share the answer arity).  An always_true UCQ holds whenever the
/// instance is nonempty.
bool Holds(const Vocabulary& vocab, const Ucq& ucq, const FactSet& facts,
           const std::vector<TermId>& answer);

/// Boolean variant.
bool HoldsBoolean(const Vocabulary& vocab, const Ucq& ucq,
                  const FactSet& facts);

/// The union of the disjuncts' answer sets, sorted and deduplicated.
std::vector<std::vector<TermId>> EvaluateUcq(const Vocabulary& vocab,
                                             const Ucq& ucq,
                                             const FactSet& facts);

/// Inserts `query` unless an existing disjunct contains it; removes
/// disjuncts the new query contains (Theorem 1 minimality).  Returns true
/// if the query was inserted.
bool InsertMinimal(const Vocabulary& vocab, ConjunctiveQuery query, Ucq* ucq);

/// True if the two UCQs agree on every instance, checked by mutual
/// disjunct containment (sound and complete for UCQs).
bool EquivalentUcqs(const Vocabulary& vocab, const Ucq& a, const Ucq& b);

/// One disjunct per line.
std::string UcqToString(const Vocabulary& vocab, const Ucq& ucq);

}  // namespace frontiers

#endif  // FRONTIERS_REWRITING_UCQ_H_
