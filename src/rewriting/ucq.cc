#include "rewriting/ucq.h"

#include <algorithm>
#include <set>

#include "hom/query_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace frontiers {

size_t Ucq::MaxDisjunctSize() const {
  size_t max = 0;
  for (const ConjunctiveQuery& q : disjuncts) max = std::max(max, q.size());
  return max;
}

bool Holds(const Vocabulary& vocab, const Ucq& ucq, const FactSet& facts,
           const std::vector<TermId>& answer) {
  obs::Span span("ucq.holds", "rewriting");
  static obs::Counter& evaluations =
      obs::DefaultRegistry().GetCounter("frontiers.ucq.holds");
  evaluations.Add();
  if (ucq.always_true) return !facts.empty();
  for (const ConjunctiveQuery& q : ucq.disjuncts) {
    if (Holds(vocab, q, facts, answer)) return true;
  }
  return false;
}

bool HoldsBoolean(const Vocabulary& vocab, const Ucq& ucq,
                  const FactSet& facts) {
  return Holds(vocab, ucq, facts, {});
}

std::vector<std::vector<TermId>> EvaluateUcq(const Vocabulary& vocab,
                                             const Ucq& ucq,
                                             const FactSet& facts) {
  obs::Span span("ucq.evaluate", "rewriting");
  static obs::Counter& evaluations =
      obs::DefaultRegistry().GetCounter("frontiers.ucq.evaluations");
  evaluations.Add();
  std::set<std::vector<TermId>> answers;
  for (const ConjunctiveQuery& q : ucq.disjuncts) {
    for (std::vector<TermId>& tuple : EvaluateQuery(vocab, q, facts)) {
      answers.insert(std::move(tuple));
    }
  }
  return {answers.begin(), answers.end()};
}

bool InsertMinimal(const Vocabulary& vocab, ConjunctiveQuery query,
                   Ucq* ucq) {
  for (const ConjunctiveQuery& existing : ucq->disjuncts) {
    if (Contains(vocab, existing, query)) return false;
  }
  std::vector<ConjunctiveQuery> kept;
  kept.reserve(ucq->disjuncts.size() + 1);
  for (ConjunctiveQuery& existing : ucq->disjuncts) {
    if (!Contains(vocab, query, existing)) {
      kept.push_back(std::move(existing));
    }
  }
  kept.push_back(std::move(query));
  ucq->disjuncts = std::move(kept);
  return true;
}

bool EquivalentUcqs(const Vocabulary& vocab, const Ucq& a, const Ucq& b) {
  if (a.always_true || b.always_true) {
    return a.always_true == b.always_true;
  }
  // Every disjunct of a must be contained in some disjunct of b (i.e. some
  // disjunct of b is at least as general), and vice versa.
  auto covered = [&vocab](const Ucq& fine, const Ucq& coarse) {
    for (const ConjunctiveQuery& q : fine.disjuncts) {
      bool found = false;
      for (const ConjunctiveQuery& general : coarse.disjuncts) {
        if (Contains(vocab, general, q)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return covered(a, b) && covered(b, a);
}

std::string UcqToString(const Vocabulary& vocab, const Ucq& ucq) {
  if (ucq.always_true) return "(always true)\n";
  std::string out;
  for (const ConjunctiveQuery& q : ucq.disjuncts) {
    out += QueryToString(vocab, q);
    out += "\n";
  }
  return out;
}

}  // namespace frontiers
